"""Tests for repro.semantics.similarity (lexicon expansion)."""

import numpy as np
import pytest

from repro.semantics.similarity import expand_lexicon, most_similar
from repro.semantics.word2vec import Word2Vec


@pytest.fixture(scope="module")
def model():
    """Three separated families: pos0..7, neg0..7, mid0..7."""
    rng = np.random.default_rng(31)
    families = {
        "pos": [f"pos{i}" for i in range(8)],
        "neg": [f"neg{i}" for i in range(8)],
        "mid": [f"mid{i}" for i in range(8)],
    }
    sentences = []
    for __ in range(900):
        name = ("pos", "neg", "mid")[int(rng.integers(0, 3))]
        fam = families[name]
        n = rng.integers(3, 7)
        sentences.append([fam[i] for i in rng.integers(0, 8, n)])
    return Word2Vec(
        dim=16, window=3, epochs=20, learning_rate=0.1,
        batch_size=256, min_count=1, subsample=0.0, seed=1,
    ).fit(sentences)


class TestMostSimilar:
    def test_mean_query_prefers_family(self, model):
        neighbors = [
            w for w, __ in most_similar(model, ["pos0", "pos1"], k=5)
        ]
        assert sum(1 for w in neighbors if w.startswith("pos")) >= 4

    def test_excludes_queries(self, model):
        neighbors = [w for w, __ in most_similar(model, ["pos0"], k=10)]
        assert "pos0" not in neighbors

    def test_empty_words_rejected(self, model):
        with pytest.raises(ValueError):
            most_similar(model, [], k=3)


class TestExpandLexicon:
    def test_expands_within_family(self, model):
        lexicon = expand_lexicon(
            model, ["pos0"], k=5, max_size=8, min_similarity=0.3
        )
        family_share = sum(1 for w in lexicon if w.startswith("pos")) / len(
            lexicon
        )
        assert family_share > 0.8

    def test_respects_max_size(self, model):
        lexicon = expand_lexicon(
            model, ["pos0"], k=8, max_size=5, min_similarity=0.0
        )
        assert len(lexicon) <= 5

    def test_seeds_always_included(self, model):
        lexicon = expand_lexicon(model, ["pos0", "pos1"], max_size=10)
        assert "pos0" in lexicon and "pos1" in lexicon

    def test_unknown_seeds_skipped(self, model):
        lexicon = expand_lexicon(
            model, ["pos0", "notaword"], k=3, max_size=6
        )
        assert "notaword" not in lexicon

    def test_all_unknown_seeds_raise(self, model):
        with pytest.raises(ValueError):
            expand_lexicon(model, ["nope1", "nope2"])

    def test_max_size_below_seed_count_raises(self, model):
        with pytest.raises(ValueError):
            expand_lexicon(model, ["pos0", "pos1", "pos2"], max_size=2)

    def test_high_threshold_blocks_expansion(self, model):
        lexicon = expand_lexicon(
            model, ["pos0"], k=5, max_size=20, min_similarity=0.999999
        )
        assert lexicon == ["pos0"]

    def test_no_duplicates(self, model):
        lexicon = expand_lexicon(
            model, ["pos0"], k=6, max_size=16, min_similarity=0.0
        )
        assert len(lexicon) == len(set(lexicon))

    def test_round_limit_respected(self, model):
        one_round = expand_lexicon(
            model,
            ["pos0"],
            k=2,
            max_size=24,
            min_similarity=0.0,
            max_rounds=1,
        )
        # One round from a single seed adds at most k words.
        assert len(one_round) <= 3
