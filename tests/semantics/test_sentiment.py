"""Tests for repro.semantics.sentiment."""

import numpy as np
import pytest

from repro.semantics.sentiment import SentimentModel


@pytest.fixture(scope="module")
def model():
    docs = [
        ["good", "nice", "item"],
        ["good", "love"],
        ["nice", "love", "great"],
        ["bad", "awful", "item"],
        ["bad", "broken"],
        ["awful", "broken", "worst"],
    ]
    labels = [1, 1, 1, 0, 0, 0]
    return SentimentModel().fit(docs, labels)


class TestFit:
    def test_mismatched_lengths(self):
        with pytest.raises(ValueError):
            SentimentModel().fit([["a"]], [1, 0])

    def test_empty_corpus(self):
        with pytest.raises(ValueError):
            SentimentModel().fit([], [])

    def test_fit_returns_self(self):
        model = SentimentModel()
        assert model.fit([["a"], ["b"]], [1, 0]) is model

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            SentimentModel().score(["a"])


class TestScore:
    def test_positive_words_score_high(self, model):
        assert model.score(["good", "nice"]) > 0.8

    def test_negative_words_score_low(self, model):
        assert model.score(["bad", "awful"]) < 0.2

    def test_score_in_unit_interval(self, model):
        for doc in (["good"], ["bad"], ["item"], ["good", "bad"]):
            assert 0.0 <= model.score(doc) <= 1.0

    def test_unknown_words_fall_back_to_prior(self, model):
        assert model.score(["xyzzy", "quux"]) == pytest.approx(0.5, abs=0.05)

    def test_empty_comment_scores_prior(self, model):
        assert model.score([]) == pytest.approx(0.5, abs=0.05)

    def test_mixed_comment_intermediate(self, model):
        mixed = model.score(["good", "bad"])
        assert model.score(["bad"]) < mixed < model.score(["good"])

    def test_score_many_matches_score(self, model):
        docs = [["good"], ["bad"]]
        assert model.score_many(docs) == [
            model.score(docs[0]),
            model.score(docs[1]),
        ]

    def test_predict_thresholds(self, model):
        assert model.predict(["good", "nice"]) == 1
        assert model.predict(["bad", "awful"]) == 0


class TestOnSyntheticLanguage:
    def test_separates_language_styles(self, language, rng):
        """Trained on the synthetic sentiment corpus, the model
        separates promo comments from complaints."""
        from repro.ecommerce.language import (
            ORGANIC_NEGATIVE_STYLE,
            PROMO_STYLE,
        )

        docs, labels = language.sentiment_corpus(800, rng)
        model = SentimentModel().fit(docs, labels)
        promo_scores = []
        negative_scores = []
        for __ in range(30):
            __text, words = language.generate_comment(PROMO_STYLE, rng)
            promo_scores.append(model.score(words))
            __text, words = language.generate_comment(
                ORGANIC_NEGATIVE_STYLE, rng
            )
            negative_scores.append(model.score(words))
        assert np.mean(promo_scores) > 0.85
        assert np.mean(negative_scores) < 0.4
