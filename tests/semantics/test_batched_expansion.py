"""Batched k-NN queries equal the per-word reference path."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.semantics.similarity import expand_lexicon
from repro.semantics.word2vec import Word2Vec, _top_k_filtered
from repro.text.vocabulary import Vocabulary


def make_model(n_words: int, dim: int, seed: int) -> Word2Vec:
    """A Word2Vec shell with random embeddings (no training needed for
    query-path tests)."""
    rng = np.random.default_rng(seed)
    words = [f"w{i}" for i in range(n_words)]
    model = Word2Vec(dim=dim, min_count=1)
    model.vocabulary = Vocabulary.from_sentences([words])
    model._input = rng.normal(size=(n_words, dim))
    model._output = np.zeros((n_words, dim))
    return model


class TestTopKFiltered:
    def test_matches_full_sort(self):
        rng = np.random.default_rng(0)
        scores = rng.normal(size=50)
        got = _top_k_filtered(scores, k=7, banned_ids={3, 10})
        expected = [
            (int(i), float(scores[i]))
            for i in np.argsort(-scores)
            if int(i) not in {3, 10}
        ][:7]
        assert got == expected

    def test_tie_break_prefers_lower_id(self):
        scores = np.array([0.5, 0.9, 0.9, 0.1, 0.9])
        assert [i for i, _ in _top_k_filtered(scores, 3, set())] == [1, 2, 4]

    def test_k_zero_or_empty(self):
        assert _top_k_filtered(np.array([1.0]), 0, set()) == []

    def test_all_banned(self):
        assert _top_k_filtered(np.array([1.0, 2.0]), 5, {0, 1}) == []


class TestMostSimilarBatch:
    @settings(deadline=None, max_examples=40, derandomize=True)
    @given(
        n_words=st.integers(5, 40),
        dim=st.integers(2, 12),
        k=st.integers(1, 12),
        seed=st.integers(0, 10_000),
    )
    def test_equals_per_word_queries(self, n_words, dim, k, seed):
        model = make_model(n_words, dim, seed)
        rng = np.random.default_rng(seed + 1)
        queries = [
            f"w{i}"
            for i in rng.choice(
                n_words, size=min(n_words, 5), replace=False
            )
        ]
        exclude = {f"w{i}" for i in rng.integers(0, n_words, size=3)}
        batched = model.most_similar_batch(queries, k=k, exclude=exclude)
        reference = [
            model.most_similar(w, k=k, exclude=exclude) for w in queries
        ]
        assert [[w for w, _ in row] for row in batched] == [
            [w for w, _ in row] for row in reference
        ]
        for row_b, row_r in zip(batched, reference):
            for (_, sb), (_, sr) in zip(row_b, row_r):
                assert sb == pytest.approx(sr, abs=1e-12)

    def test_empty_frontier(self):
        model = make_model(6, 4, 0)
        assert model.most_similar_batch([], k=3) == []


class TestExpandLexiconParity:
    @settings(deadline=None, max_examples=30, derandomize=True)
    @given(
        n_words=st.integers(8, 50),
        dim=st.integers(2, 10),
        k=st.integers(1, 8),
        n_seeds=st.integers(1, 4),
        min_similarity=st.floats(-0.5, 0.9),
        max_size=st.integers(4, 40),
        seed=st.integers(0, 10_000),
    )
    def test_batched_equals_reference(
        self, n_words, dim, k, n_seeds, min_similarity, max_size, seed
    ):
        model = make_model(n_words, dim, seed)
        seeds = [f"w{i}" for i in range(min(n_seeds, max_size))]
        kwargs = dict(
            k=k,
            max_size=max_size,
            min_similarity=min_similarity,
            max_rounds=6,
        )
        batched = expand_lexicon(model, seeds, method="batched", **kwargs)
        reference = expand_lexicon(model, seeds, method="reference", **kwargs)
        assert batched == reference

    def test_default_method_is_batched(self, recwarn):
        model = make_model(20, 6, 3)
        assert expand_lexicon(
            model, ["w0"], k=4, max_size=10, min_similarity=0.0
        ) == expand_lexicon(
            model,
            ["w0"],
            k=4,
            max_size=10,
            min_similarity=0.0,
            method="batched",
        )

    def test_unknown_method_rejected(self):
        model = make_model(10, 4, 0)
        with pytest.raises(ValueError):
            expand_lexicon(model, ["w0"], method="loop")
