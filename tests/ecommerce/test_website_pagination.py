"""Regression tests for pagination stability under noise injection.

An earlier implementation re-randomized duplicate injection on every
request, which shifted rows between pages and silently *lost* records
during a paginated crawl.  Duplication must be a deterministic function
of the row so pagination is stable.
"""

import pytest

from repro.ecommerce.website import PlatformWebsite


@pytest.fixture()
def noisy_site(taobao_platform):
    return PlatformWebsite(
        taobao_platform,
        page_size=7,
        failure_rate=0.0,
        duplicate_rate=0.3,
        seed=12,
    )


class TestPaginationStability:
    def test_same_page_identical_across_requests(self, noisy_site):
        first = noisy_site.get_shops(0)["rows"]
        second = noisy_site.get_shops(0)["rows"]
        assert first == second

    def test_pages_partition_the_stream(self, noisy_site, taobao_platform):
        """Walking all pages yields every shop at least once, with
        duplicates exactly where the deterministic rule says."""
        rows = []
        page_no = 0
        while True:
            page = noisy_site.get_shops(page_no)
            rows.extend(page["rows"])
            if not page["has_more"]:
                break
            page_no += 1
        seen_ids = {row["shop_id"] for row in rows}
        expected_ids = {shop.shop_id for shop in taobao_platform.shops}
        assert seen_ids == expected_ids

    def test_comment_pagination_loses_nothing(
        self, noisy_site, taobao_platform
    ):
        item = max(taobao_platform.items, key=lambda i: len(i.comments))
        rows = []
        page_no = 0
        while True:
            page = noisy_site.get_item_comments(item.item_id, page_no)
            rows.extend(page["rows"])
            if not page["has_more"]:
                break
            page_no += 1
        seen = {int(row["comment_id"]) for row in rows}
        expected = {c.comment_id for c in item.comments}
        assert seen == expected

    def test_duplicates_actually_injected(self, noisy_site, taobao_platform):
        item = max(taobao_platform.items, key=lambda i: len(i.comments))
        rows = []
        page_no = 0
        while True:
            page = noisy_site.get_item_comments(item.item_id, page_no)
            rows.extend(page["rows"])
            if not page["has_more"]:
                break
            page_no += 1
        # At 30% duplicate rate a comment-rich item must show some.
        if len(item.comments) >= 10:
            assert len(rows) > len(item.comments)

    def test_different_seeds_duplicate_different_rows(self, taobao_platform):
        a = PlatformWebsite(
            taobao_platform, page_size=10_000, failure_rate=0.0,
            duplicate_rate=0.3, seed=1,
        )
        b = PlatformWebsite(
            taobao_platform, page_size=10_000, failure_rate=0.0,
            duplicate_rate=0.3, seed=2,
        )
        rows_a = [r["shop_id"] for r in a.get_shops(0)["rows"]]
        rows_b = [r["shop_id"] for r in b.get_shops(0)["rows"]]
        # Both contain all shops but (with high probability) duplicate
        # different subsets.
        assert set(rows_a) == set(rows_b)
        assert rows_a != rows_b
