"""Tests for repro.ecommerce.generator."""

import numpy as np
import pytest

from repro.ecommerce.entities import FraudLabel
from repro.ecommerce.generator import PlatformGenerator
from repro.ecommerce.profiles import taobao_profile


class TestGeneration:
    def test_counts_match_profile(self, taobao_platform, language):
        profile = taobao_profile().scaled(0.0005)
        assert len(taobao_platform.items) == profile.n_items
        assert len(taobao_platform.shops) == profile.n_shops
        assert len(taobao_platform.users) == profile.n_users

    def test_fraud_rate_approximate(self, taobao_platform):
        profile = taobao_profile().scaled(0.0005)
        rate = len(taobao_platform.fraud_items) / len(taobao_platform.items)
        assert rate == pytest.approx(profile.fraud_item_rate, rel=0.6)

    def test_fraud_items_have_promo_comments(self, taobao_platform):
        for item in taobao_platform.fraud_items:
            assert any(c.is_promotion for c in item.comments)

    def test_normal_items_have_no_promo_comments(self, taobao_platform):
        for item in taobao_platform.normal_items:
            assert not any(c.is_promotion for c in item.comments)

    def test_evidence_split_present(self, taobao_platform):
        labels = {item.label for item in taobao_platform.fraud_items}
        # With ~90% evidence fraction both labels should appear at any
        # non-trivial scale.
        assert FraudLabel.EVIDENCED in labels

    def test_promoters_exist(self, taobao_platform):
        promoters = [
            u for u in taobao_platform.users.values() if u.is_promoter
        ]
        assert promoters
        assert all(u.exp_value >= 100 for u in promoters)

    def test_expvalue_bounds(self, taobao_platform):
        values = [u.exp_value for u in taobao_platform.users.values()]
        assert min(values) >= 100
        assert max(values) <= 27_158_720

    def test_promoters_have_lower_expvalue(self, taobao_platform):
        users = taobao_platform.users.values()
        promoter_median = np.median(
            [u.exp_value for u in users if u.is_promoter]
        )
        general_median = np.median(
            [u.exp_value for u in users if not u.is_promoter]
        )
        assert promoter_median < general_median

    def test_promo_comments_come_from_promoters(self, taobao_platform):
        for item in taobao_platform.fraud_items:
            for comment in item.comments:
                if comment.is_promotion:
                    assert taobao_platform.user(comment.user_id).is_promoter

    def test_deterministic(self, language):
        profile = taobao_profile().scaled(0.0002)
        a = PlatformGenerator(profile, language, seed=3).generate()
        b = PlatformGenerator(profile, language, seed=3).generate()
        assert a.summary() == b.summary()
        assert a.items[0].comments == b.items[0].comments

    def test_different_seeds_differ(self, language):
        profile = taobao_profile().scaled(0.0002)
        a = PlatformGenerator(profile, language, seed=3).generate()
        b = PlatformGenerator(profile, language, seed=4).generate()
        assert a.items[0].comments != b.items[0].comments

    def test_id_offset_separates_platforms(self, language):
        profile = taobao_profile().scaled(0.0002)
        a = PlatformGenerator(profile, language, seed=3).generate()
        b = PlatformGenerator(
            profile, language, seed=3, id_offset=10**9
        ).generate()
        a_ids = {item.item_id for item in a.items}
        b_ids = {item.item_id for item in b.items}
        assert not a_ids & b_ids

    def test_campaigns_attached(self, taobao_platform):
        campaigns = taobao_platform.campaigns
        assert campaigns
        campaign_items = {
            iid for c in campaigns for iid in c.item_ids
        }
        fraud_ids = {item.item_id for item in taobao_platform.fraud_items}
        assert campaign_items == fraud_ids

    def test_dead_items_exist_for_rule_filter(self, taobao_platform):
        dead = [i for i in taobao_platform.items if i.sales_volume < 5]
        assert dead  # the sales<5 rule must have something to filter


class TestClientMixes:
    def test_promo_orders_web_dominant(self, taobao_platform):
        from collections import Counter

        promo = Counter()
        organic = Counter()
        for item in taobao_platform.items:
            for comment in item.comments:
                bucket = promo if comment.is_promotion else organic
                bucket[comment.client.value] += 1
        assert promo and organic
        assert max(promo, key=promo.get) == "web"
        assert max(organic, key=organic.get) == "android"
