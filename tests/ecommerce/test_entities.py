"""Tests for repro.ecommerce.entities."""

import pytest

from repro.ecommerce.entities import (
    Client,
    Comment,
    FraudLabel,
    Item,
    Platform,
    Shop,
    User,
)


def make_item(item_id=1, label=FraudLabel.NORMAL, n_comments=0):
    item = Item(
        item_id=item_id,
        shop_id=1,
        name="thing",
        price=9.9,
        sales_volume=10,
        label=label,
    )
    for i in range(n_comments):
        item.comments.append(
            Comment(
                comment_id=i,
                item_id=item_id,
                user_id=1,
                content=f"text{i}",
                client=Client.WEB,
                date="2017-09-10 12:00:00",
            )
        )
    return item


class TestFraudLabel:
    def test_normal_not_fraud(self):
        assert not FraudLabel.NORMAL.is_fraud

    def test_both_fraud_labels(self):
        assert FraudLabel.EVIDENCED.is_fraud
        assert FraudLabel.EXPERT.is_fraud


class TestUser:
    def test_anonymized_nickname(self):
        assert User(1, "moli", 100).anonymized_nickname() == "m***i"

    def test_anonymized_single_char(self):
        assert User(1, "m", 100).anonymized_nickname() == "m***"

    def test_frozen(self):
        user = User(1, "x", 100)
        with pytest.raises(AttributeError):
            user.exp_value = 5


class TestItem:
    def test_is_fraud_follows_label(self):
        assert make_item(label=FraudLabel.EXPERT).is_fraud
        assert not make_item().is_fraud

    def test_comment_texts(self):
        item = make_item(n_comments=2)
        assert item.comment_texts == ["text0", "text1"]


class TestPlatform:
    @pytest.fixture()
    def platform(self):
        items = [
            make_item(1),
            make_item(2, label=FraudLabel.EVIDENCED, n_comments=3),
            make_item(3, label=FraudLabel.EXPERT, n_comments=1),
        ]
        users = {1: User(1, "abc", 500)}
        shops = [Shop(1, "s", "https://x/1")]
        return Platform(name="p", shops=shops, users=users, items=items)

    def test_n_comments(self, platform):
        assert platform.n_comments == 4

    def test_fraud_normal_partition(self, platform):
        assert len(platform.fraud_items) == 2
        assert len(platform.normal_items) == 1
        assert len(platform.fraud_items) + len(platform.normal_items) == len(
            platform.items
        )

    def test_item_by_id(self, platform):
        assert platform.item_by_id(2).label is FraudLabel.EVIDENCED

    def test_item_by_id_missing(self, platform):
        with pytest.raises(KeyError):
            platform.item_by_id(99)

    def test_user_lookup(self, platform):
        assert platform.user(1).nickname == "abc"

    def test_summary_shape(self, platform):
        summary = platform.summary()
        assert summary["items"] == 3
        assert summary["fraud_items"] == 2
        assert summary["normal_items"] == 1
        assert summary["comments"] == 4
        assert summary["shops"] == 1
        assert summary["users"] == 1


class TestGeneratedPlatformInvariants:
    def test_comment_item_ids_consistent(self, taobao_platform):
        for item in taobao_platform.items[:200]:
            for comment in item.comments:
                assert comment.item_id == item.item_id

    def test_comment_users_exist(self, taobao_platform):
        for item in taobao_platform.items[:200]:
            for comment in item.comments:
                assert comment.user_id in taobao_platform.users

    def test_comment_ids_unique(self, taobao_platform):
        seen = set()
        for item in taobao_platform.items:
            for comment in item.comments:
                assert comment.comment_id not in seen
                seen.add(comment.comment_id)

    def test_sales_volume_at_least_comments_for_active_items(
        self, taobao_platform
    ):
        for item in taobao_platform.items:
            if item.sales_volume >= 5:
                # Active items must have sales >= commenting orders.
                assert item.sales_volume >= len(item.comments) * 0.5
