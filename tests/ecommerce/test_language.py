"""Tests for repro.ecommerce.language."""

import numpy as np
import pytest

from repro.ecommerce.language import (
    ENTHUSIAST_STYLE,
    ORGANIC_MIX,
    ORGANIC_NEGATIVE_STYLE,
    ORGANIC_NEUTRAL_STYLE,
    ORGANIC_POSITIVE_STYLE,
    PROMO_STYLE,
    CommentStyle,
    StyleMix,
    SyntheticLanguage,
)
from repro.text.tokenizer import PUNCTUATION, strip_punctuation


class TestStyleValidation:
    def test_mode_probs_cannot_exceed_one(self):
        with pytest.raises(ValueError):
            CommentStyle("bad", 2, 3, p_praise=0.7, p_complaint=0.5,
                         p_duplicate=0.0)

    def test_needs_at_least_one_phrase(self):
        with pytest.raises(ValueError):
            CommentStyle("bad", 0.5, 3, 0.1, 0.1, 0.0)


class TestStyleMix:
    def test_weights_length_checked(self):
        with pytest.raises(ValueError):
            StyleMix(styles=(PROMO_STYLE,), weights=(0.5, 0.5))

    def test_draw_returns_member(self, rng):
        style = ORGANIC_MIX.draw(rng)
        assert style in ORGANIC_MIX.styles

    def test_unweighted_mix_draws_uniformly(self, rng):
        mix = StyleMix(styles=(PROMO_STYLE, ENTHUSIAST_STYLE))
        names = {mix.draw(rng).name for __ in range(50)}
        assert names == {"promo", "enthusiast"}


class TestLexiconConstruction:
    def test_counts(self, language):
        assert len(language.positive_words) == 60
        assert len(language.negative_words) == 60
        assert len(language.neutral_words) == 220
        assert len(language.function_words) == 40

    def test_no_overlap_between_categories(self, language):
        pos = set(language.positive_words)
        neg = set(language.negative_words)
        neu = set(language.neutral_words)
        fun = set(language.function_words)
        assert not (pos & neg or pos & neu or pos & fun)
        assert not (neg & neu or neg & fun or neu & fun)

    def test_seeds_lead_positive_list(self, language):
        assert language.positive_words[: len(language.positive_seeds)] == (
            language.positive_seeds
        )

    def test_variants_map_to_sources(self, language):
        for variant, source in language.variant_map.items():
            assert len(variant) == len(source)
            diffs = sum(1 for a, b in zip(variant, source) if a != b)
            assert diffs == 1

    def test_variant_sets_included_in_polarity_sets(self, language):
        pos_sources = set(language.positive_words)
        for variant, source in language.variant_map.items():
            if source in pos_sources:
                assert variant in language.positive_set
            else:
                assert variant in language.negative_set

    def test_deterministic_construction(self):
        a = SyntheticLanguage(seed=7)
        b = SyntheticLanguage(seed=7)
        assert a.positive_words == b.positive_words
        assert a.variant_map == b.variant_map

    def test_different_seeds_differ(self):
        a = SyntheticLanguage(seed=7)
        b = SyntheticLanguage(seed=8)
        assert a.neutral_words != b.neutral_words

    def test_bad_topic_count(self):
        with pytest.raises(ValueError):
            SyntheticLanguage(n_topics=0)

    def test_dictionary_weights_cover_all_words(self, language):
        weights = language.dictionary_weights()
        assert set(weights) == set(language.all_words())
        assert all(w >= 1 for w in weights.values())

    def test_variant_weights_below_source(self, language):
        weights = language.dictionary_weights()
        for variant, source in language.variant_map.items():
            assert weights[variant] <= weights[source]


class TestCommentGeneration:
    def test_text_is_words_plus_punctuation(self, language, rng):
        text, words = language.generate_comment(PROMO_STYLE, rng)
        assert strip_punctuation(text) == "".join(words)

    def test_ends_with_final_punctuation(self, language, rng):
        text, __ = language.generate_comment(ORGANIC_NEUTRAL_STYLE, rng)
        assert text[-1] in PUNCTUATION

    def test_words_from_lexicon(self, language, rng):
        all_words = set(language.all_words())
        __, words = language.generate_comment(PROMO_STYLE, rng)
        assert set(words) <= all_words

    def test_promo_longer_than_organic(self, language, rng):
        promo_lens = []
        organic_lens = []
        for __ in range(60):
            __t, words = language.generate_comment(PROMO_STYLE, rng)
            promo_lens.append(len(words))
            __t, words = language.generate_comment(
                ORGANIC_NEUTRAL_STYLE, rng
            )
            organic_lens.append(len(words))
        assert np.mean(promo_lens) > 2 * np.mean(organic_lens)

    def test_promo_more_positive_than_neutral(self, language, rng):
        def positive_rate(style):
            hits = total = 0
            for __ in range(60):
                __t, words = language.generate_comment(style, rng)
                hits += sum(1 for w in words if w in language.positive_set)
                total += len(words)
            return hits / total

        assert positive_rate(PROMO_STYLE) > 3 * positive_rate(
            ORGANIC_NEUTRAL_STYLE
        )

    def test_promo_nearly_free_of_negative_words(self, language, rng):
        # The paper: fraud comments "tend to have no negative words".
        # Description phrases keep a tiny residual negative rate.
        hits = total = 0
        for __ in range(60):
            __t, words = language.generate_comment(PROMO_STYLE, rng)
            hits += sum(1 for w in words if w in language.negative_set)
            total += len(words)
        assert hits / total < 0.01

    def test_negative_style_has_negative_words(self, language, rng):
        hits = 0
        for __ in range(30):
            __t, words = language.generate_comment(
                ORGANIC_NEGATIVE_STYLE, rng
            )
            hits += sum(1 for w in words if w in language.negative_set)
        assert hits > 0

    def test_duplication_higher_in_promo(self, language, rng):
        def dup_rate(style):
            dups = total = 0
            for __ in range(60):
                __t, words = language.generate_comment(style, rng)
                dups += len(words) - len(set(words))
                total += len(words)
            return dups / total

        assert dup_rate(PROMO_STYLE) > dup_rate(ORGANIC_POSITIVE_STYLE)

    def test_deterministic_given_rng_state(self, language):
        a = language.generate_comment(
            PROMO_STYLE, np.random.default_rng(77)
        )
        b = language.generate_comment(
            PROMO_STYLE, np.random.default_rng(77)
        )
        assert a == b


class TestNaming:
    def test_item_name_words(self, language, rng):
        name = language.generate_item_name(rng)
        assert 2 <= len(name.split()) <= 3

    def test_shop_name_suffix(self, language, rng):
        assert language.generate_shop_name(rng).endswith(" store")

    def test_nickname_nonempty(self, language, rng):
        assert language.generate_nickname(rng)


class TestSentimentCorpus:
    def test_balanced_labels(self, language, rng):
        docs, labels = language.sentiment_corpus(100, rng)
        assert len(docs) == 100
        assert sum(labels) == 50

    def test_too_small_rejected(self, language, rng):
        with pytest.raises(ValueError):
            language.sentiment_corpus(1, rng)

    def test_positive_docs_more_positive(self, language, rng):
        docs, labels = language.sentiment_corpus(200, rng)
        pos_rate = lambda doc: sum(
            1 for w in doc if w in language.positive_set
        ) / max(1, len(doc))
        pos_docs = [d for d, l in zip(docs, labels) if l == 1]
        neg_docs = [d for d, l in zip(docs, labels) if l == 0]
        assert np.mean([pos_rate(d) for d in pos_docs]) > np.mean(
            [pos_rate(d) for d in neg_docs]
        )
