"""Tests for repro.ecommerce.website."""

import pytest

from repro.ecommerce.website import PlatformWebsite, TransientHTTPError


@pytest.fixture()
def site(taobao_platform):
    return PlatformWebsite(
        taobao_platform, page_size=10, failure_rate=0.0, duplicate_rate=0.0,
        seed=0,
    )


class TestValidation:
    def test_bad_failure_rate(self, taobao_platform):
        with pytest.raises(ValueError):
            PlatformWebsite(taobao_platform, failure_rate=1.0)

    def test_bad_duplicate_rate(self, taobao_platform):
        with pytest.raises(ValueError):
            PlatformWebsite(taobao_platform, duplicate_rate=-0.1)

    def test_negative_page(self, site):
        with pytest.raises(ValueError):
            site.get_shops(page=-1)


class TestPagination:
    def test_page_size_respected(self, site):
        page = site.get_shops(0)
        assert len(page["rows"]) <= 10

    def test_has_more_flag(self, site, taobao_platform):
        n_shops = len(taobao_platform.shops)
        page = site.get_shops(0)
        assert page["has_more"] == (n_shops > 10)

    def test_all_pages_cover_all_shops(self, site, taobao_platform):
        rows = []
        page_no = 0
        while True:
            page = site.get_shops(page_no)
            rows.extend(page["rows"])
            if not page["has_more"]:
                break
            page_no += 1
        assert len(rows) == len(taobao_platform.shops)

    def test_beyond_last_page_empty(self, site):
        page = site.get_shops(10_000)
        assert page["rows"] == []
        assert not page["has_more"]


class TestEndpoints:
    def test_shop_rows_shape(self, site):
        row = site.get_shops(0)["rows"][0]
        assert set(row) == {"shop_id", "shop_url", "shop_name"}

    def test_item_rows_shape(self, site, taobao_platform):
        shop_id = taobao_platform.shops[0].shop_id
        rows = site.get_shop_items(shop_id, 0)["rows"]
        if rows:
            assert set(rows[0]) == {
                "item_id",
                "item_name",
                "price",
                "sales_volume",
                "shop_id",
            }

    def test_unknown_shop_raises(self, site):
        with pytest.raises(KeyError):
            site.get_shop_items(999_999)

    def test_comment_rows_match_listing2(self, site, taobao_platform):
        item = next(i for i in taobao_platform.items if i.comments)
        rows = site.get_item_comments(item.item_id, 0)["rows"]
        assert set(rows[0]) == {
            "item_id",
            "comment_id",
            "comment_content",
            "nickname",
            "userExpValue",
            "client_information",
            "date",
        }

    def test_nicknames_anonymized(self, site, taobao_platform):
        item = next(i for i in taobao_platform.items if i.comments)
        rows = site.get_item_comments(item.item_id, 0)["rows"]
        assert all("***" in row["nickname"] for row in rows)

    def test_unknown_item_raises(self, site):
        with pytest.raises(KeyError):
            site.get_item_comments(42)


class TestNoise:
    def test_failures_raised(self, taobao_platform):
        site = PlatformWebsite(
            taobao_platform, failure_rate=0.9, duplicate_rate=0.0, seed=1
        )
        with pytest.raises(TransientHTTPError):
            for __ in range(50):
                site.get_shops(0)

    def test_request_count_tracks_failures(self, taobao_platform):
        site = PlatformWebsite(
            taobao_platform, failure_rate=0.5, duplicate_rate=0.0, seed=1
        )
        attempts = 0
        for __ in range(20):
            attempts += 1
            try:
                site.get_shops(0)
            except TransientHTTPError:
                pass
        assert site.request_count == attempts

    def test_duplicates_injected(self, taobao_platform):
        site = PlatformWebsite(
            taobao_platform,
            page_size=10_000,
            failure_rate=0.0,
            duplicate_rate=0.5,
            seed=2,
        )
        rows = site.get_shops(0)["rows"]
        ids = [row["shop_id"] for row in rows]
        assert len(ids) > len(set(ids))
