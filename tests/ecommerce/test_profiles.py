"""Tests for repro.ecommerce.profiles."""

import pytest

from repro.ecommerce.entities import Client
from repro.ecommerce.profiles import eplatform_profile, taobao_profile


class TestProfiles:
    def test_taobao_paper_counts(self):
        profile = taobao_profile()
        assert profile.n_shops == 15_992
        assert profile.n_items == 1_480_134

    def test_fraud_rates_match_paper(self):
        # D1: 18,682 / 1,480,134; E-platform: ~10,720 / 4.5M.
        assert taobao_profile().fraud_item_rate == pytest.approx(
            18_682 / 1_480_134, rel=0.05
        )
        assert eplatform_profile().fraud_item_rate == pytest.approx(
            10_720 / 4_500_000, rel=0.05
        )

    def test_evidence_fraction_matches_paper(self):
        assert taobao_profile().evidence_fraction == pytest.approx(
            16_782 / 18_682, rel=0.01
        )

    def test_client_mixes_sum_to_one(self):
        for profile in (taobao_profile(), eplatform_profile()):
            assert sum(profile.organic_client_mix.values()) == pytest.approx(
                1.0
            )
            assert sum(profile.promo_client_mix.values()) == pytest.approx(
                1.0
            )

    def test_promo_mix_web_dominant(self):
        for profile in (taobao_profile(), eplatform_profile()):
            assert (
                max(
                    profile.promo_client_mix,
                    key=profile.promo_client_mix.get,
                )
                is Client.WEB
            )

    def test_organic_mix_android_dominant(self):
        for profile in (taobao_profile(), eplatform_profile()):
            assert (
                max(
                    profile.organic_client_mix,
                    key=profile.organic_client_mix.get,
                )
                is Client.ANDROID
            )


class TestScaled:
    def test_scaled_counts(self):
        scaled = taobao_profile().scaled(0.01)
        assert scaled.n_items == round(1_480_134 * 0.01)

    def test_scaled_preserves_rates(self):
        base = taobao_profile()
        scaled = base.scaled(0.01)
        assert scaled.fraud_item_rate == base.fraud_item_rate
        assert scaled.evidence_fraction == base.evidence_fraction

    def test_minimum_floors(self):
        scaled = taobao_profile().scaled(1e-9)
        assert scaled.n_shops >= 30
        assert scaled.n_items >= 20
        assert scaled.n_users >= 50

    def test_invalid_scale(self):
        with pytest.raises(ValueError):
            taobao_profile().scaled(0.0)

    def test_scaled_is_copy(self):
        base = taobao_profile()
        base.scaled(0.5)
        assert base.n_items == 1_480_134
