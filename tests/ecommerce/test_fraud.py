"""Tests for repro.ecommerce.fraud."""

import numpy as np
import pytest

from repro.ecommerce.entities import User
from repro.ecommerce.fraud import FraudCampaign, PromoterPool


def make_promoters(n):
    return [User(i, f"u{i}", 100, is_promoter=True) for i in range(n)]


class TestPromoterPool:
    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            PromoterPool([])

    def test_len(self):
        assert len(PromoterPool(make_promoters(5))) == 5

    def test_cohort_size(self, rng):
        pool = PromoterPool(make_promoters(50))
        assert len(pool.sample_cohort(10, rng)) == 10

    def test_cohort_capped_at_pool_size(self, rng):
        pool = PromoterPool(make_promoters(5))
        assert len(pool.sample_cohort(10, rng)) == 5

    def test_bad_size(self, rng):
        pool = PromoterPool(make_promoters(5))
        with pytest.raises(ValueError):
            pool.sample_cohort(0, rng)

    def test_cohorts_overlap_heavily(self, rng):
        """Contiguous-block sampling must reuse members across cohorts."""
        pool = PromoterPool(make_promoters(60))
        overlaps = []
        for __ in range(30):
            a = {u.user_id for u in pool.sample_cohort(15, rng)}
            b = {u.user_id for u in pool.sample_cohort(15, rng)}
            overlaps.append(len(a & b))
        # With 60 promoters and blocks of 15 some cohort pairs must share
        # members; uniform sampling would too, but blocks share *runs*.
        assert max(overlaps) >= 5


class TestFraudCampaign:
    def test_promotion_orders_cover_all_items(self, rng):
        cohort = tuple(make_promoters(4))
        campaign = FraudCampaign(
            campaign_id=1,
            shop_id=1,
            item_ids=(10, 11),
            cohort=cohort,
            orders_per_promoter_item=1.0,
        )
        orders = campaign.promotion_orders(rng)
        items_seen = {item_id for item_id, __ in orders}
        assert items_seen == {10, 11}

    def test_every_cohort_member_orders(self, rng):
        cohort = tuple(make_promoters(6))
        campaign = FraudCampaign(1, 1, (10,), cohort, 1.0)
        orders = campaign.promotion_orders(rng)
        buyers = {user.user_id for __, user in orders}
        assert buyers == {u.user_id for u in cohort}

    def test_min_one_order_each(self, rng):
        cohort = tuple(make_promoters(3))
        campaign = FraudCampaign(1, 1, (10,), cohort, 1.0)
        assert len(campaign.promotion_orders(rng)) >= 3

    def test_higher_intensity_more_orders(self, rng):
        cohort = tuple(make_promoters(20))
        low = FraudCampaign(1, 1, (10,), cohort, 1.0)
        high = FraudCampaign(2, 1, (10,), cohort, 4.0)
        rng1 = np.random.default_rng(0)
        rng2 = np.random.default_rng(0)
        assert len(high.promotion_orders(rng2)) > len(
            low.promotion_orders(rng1)
        )
