"""Tests for the category structure of the simulator (paper Section VI)."""

from collections import Counter

import pytest

from repro.ecommerce.profiles import taobao_profile


class TestCategories:
    def test_profile_has_eight_paper_categories(self):
        categories = taobao_profile().categories
        assert len(categories) == 8
        assert "computer & office" in categories
        assert "food & grocery" in categories

    def test_every_item_categorized(self, taobao_platform):
        valid = set(taobao_profile().categories)
        assert all(item.category in valid for item in taobao_platform.items)

    def test_shops_specialize(self, taobao_platform):
        """All items of one shop share its category."""
        by_shop: dict[int, set[str]] = {}
        for item in taobao_platform.items:
            by_shop.setdefault(item.shop_id, set()).add(item.category)
        assert all(len(cats) == 1 for cats in by_shop.values())

    def test_multiple_categories_present(self, taobao_platform):
        counts = Counter(item.category for item in taobao_platform.items)
        assert len(counts) >= 4

    def test_comments_topically_aligned(self, taobao_platform, language):
        """Items in different categories talk about different topics.

        Comment neutral words are drawn from the category's topic slice,
        so the topical-word overlap between two categories' comment
        streams is low.
        """
        from repro.text.segmentation import ViterbiSegmenter

        topical_words = set(
            language.neutral_words[: int(0.6 * len(language.neutral_words))]
        )

        seg = ViterbiSegmenter(language.dictionary_weights())
        cat_words: dict[str, set[str]] = {}
        for item in taobao_platform.items:
            bucket = cat_words.setdefault(item.category, set())
            if len(bucket) > 250:
                continue
            for comment in item.comments[:4]:
                bucket |= set(seg.segment(comment.content)) & topical_words
        cats = [c for c, words in cat_words.items() if len(words) > 30]
        if len(cats) < 2:
            pytest.skip("not enough categories with data at this scale")
        a, b = cat_words[cats[0]], cat_words[cats[1]]
        jaccard = len(a & b) / len(a | b)
        assert jaccard < 0.6
