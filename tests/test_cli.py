"""Tests for the cats command-line interface."""

import json

import pytest

from repro.cli import build_parser, main
from repro.core.persistence import save_cats


@pytest.fixture(scope="module")
def model_dir(tmp_path_factory, trained_cats):
    path = tmp_path_factory.mktemp("cli_model")
    save_cats(trained_cats, path)
    return path


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_train_args(self):
        args = build_parser().parse_args(
            ["train", "/tmp/m", "--scale", "0.01"]
        )
        assert args.scale == 0.01

    def test_unknown_platform_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["crawl", "/tmp/d", "--platform", "amazon"]
            )


class TestCrawlCommand:
    def test_crawl_writes_dataset(self, tmp_path, capsys):
        out = tmp_path / "crawl"
        rc = main(
            [
                "crawl",
                str(out),
                "--scale",
                "0.0002",
                "--seed",
                "3",
            ]
        )
        assert rc == 0
        assert (out / "comments.jsonl").exists()
        payload = json.loads(capsys.readouterr().out)
        assert payload["collected"]["items"] > 0


class TestDetectCommand:
    def test_detect_on_crawled_data(self, tmp_path, model_dir, capsys):
        crawl_dir = tmp_path / "crawl"
        main(["crawl", str(crawl_dir), "--scale", "0.0002", "--seed", "4"])
        capsys.readouterr()
        rc = main(["detect", str(model_dir), str(crawl_dir)])
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert "n_reported" in payload
        assert payload["n_items"] > 0

    def test_detect_output_file(self, tmp_path, model_dir, capsys):
        crawl_dir = tmp_path / "crawl"
        main(["crawl", str(crawl_dir), "--scale", "0.0002", "--seed", "5"])
        out_file = tmp_path / "report.json"
        main(
            [
                "detect",
                str(model_dir),
                str(crawl_dir),
                "--output",
                str(out_file),
            ]
        )
        payload = json.loads(out_file.read_text())
        assert "reported" in payload

    def test_detect_missing_data(self, tmp_path, model_dir):
        with pytest.raises(SystemExit):
            main(["detect", str(model_dir), str(tmp_path / "empty")])


class TestEvaluateCommand:
    def test_evaluate_prints_table(self, model_dir, capsys):
        rc = main(
            ["evaluate", str(model_dir), "--scale", "0.0005", "--seed", "9"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "Precision" in out
        assert "overall fraud items" in out
