"""Tests for the cats command-line interface."""

import json

import pytest

from repro.cli import build_parser, main
from repro.core.persistence import save_cats


@pytest.fixture(scope="module")
def model_dir(tmp_path_factory, trained_cats):
    path = tmp_path_factory.mktemp("cli_model")
    save_cats(trained_cats, path)
    return path


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_train_args(self):
        args = build_parser().parse_args(
            ["train", "/tmp/m", "--scale", "0.01"]
        )
        assert args.scale == 0.01
        assert args.tree_workers is None

    def test_train_tree_workers(self):
        args = build_parser().parse_args(
            ["train", "/tmp/m", "--tree-workers", "4"]
        )
        assert args.tree_workers == 4

    def test_unknown_platform_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["crawl", "/tmp/d", "--platform", "amazon"]
            )


class TestCrawlCommand:
    def test_crawl_writes_dataset(self, tmp_path, capsys):
        out = tmp_path / "crawl"
        rc = main(
            [
                "crawl",
                str(out),
                "--scale",
                "0.0002",
                "--seed",
                "3",
            ]
        )
        assert rc == 0
        assert (out / "comments.jsonl").exists()
        payload = json.loads(capsys.readouterr().out)
        assert payload["collected"]["items"] > 0


class TestDetectCommand:
    def test_detect_on_crawled_data(self, tmp_path, model_dir, capsys):
        crawl_dir = tmp_path / "crawl"
        main(["crawl", str(crawl_dir), "--scale", "0.0002", "--seed", "4"])
        capsys.readouterr()
        rc = main(["detect", str(model_dir), str(crawl_dir)])
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert "n_reported" in payload
        assert payload["n_items"] > 0

    def test_detect_output_file(self, tmp_path, model_dir, capsys):
        crawl_dir = tmp_path / "crawl"
        main(["crawl", str(crawl_dir), "--scale", "0.0002", "--seed", "5"])
        out_file = tmp_path / "report.json"
        main(
            [
                "detect",
                str(model_dir),
                str(crawl_dir),
                "--output",
                str(out_file),
            ]
        )
        payload = json.loads(out_file.read_text())
        assert "reported" in payload

    def test_detect_missing_data(self, tmp_path, model_dir):
        with pytest.raises(SystemExit):
            main(["detect", str(model_dir), str(tmp_path / "empty")])


class TestAnalyzeCommand:
    def test_analyze_then_detect_matches_live_detect(
        self, tmp_path, model_dir, capsys
    ):
        crawl_dir = tmp_path / "crawl"
        main(["crawl", str(crawl_dir), "--scale", "0.0002", "--seed", "6"])
        capsys.readouterr()
        store_dir = tmp_path / "columnar"
        rc = main(
            ["analyze", str(model_dir), str(crawl_dir), str(store_dir)]
        )
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["analyzed"] > 0
        assert payload["generation"] == 1
        assert (store_dir / "store.json").exists()
        # Detection from the store must match live detection exactly.
        main(["detect", str(model_dir), str(crawl_dir)])
        live = json.loads(capsys.readouterr().out)
        rc = main(
            [
                "detect",
                str(model_dir),
                str(crawl_dir),
                "--store",
                str(store_dir),
            ]
        )
        assert rc == 0
        stored = json.loads(capsys.readouterr().out)
        assert stored == live

    def test_analyze_workers_store_identical_to_serial(
        self, tmp_path, model_dir, capsys
    ):
        import numpy as np

        from repro.core.columnar import ColumnarCommentStore

        crawl_dir = tmp_path / "crawl"
        main(["crawl", str(crawl_dir), "--scale", "0.0002", "--seed", "9"])
        serial_dir = tmp_path / "serial"
        parallel_dir = tmp_path / "parallel"
        main(
            [
                "analyze", str(model_dir), str(crawl_dir),
                str(serial_dir), "--workers", "1",
            ]
        )
        rc = main(
            [
                "analyze", str(model_dir), str(crawl_dir),
                str(parallel_dir), "--workers", "2",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out.strip().splitlines()
        assert json.loads(out[-1])["workers"] == 2
        serial = ColumnarCommentStore.load(serial_dir)
        parallel = ColumnarCommentStore.load(parallel_dir)
        assert np.array_equal(
            np.asarray(serial.tokens()), np.asarray(parallel.tokens())
        )
        assert np.array_equal(
            np.asarray(serial.offsets()), np.asarray(parallel.offsets())
        )
        assert (
            serial.interner.export_state()["words"]
            == parallel.interner.export_state()["words"]
        )

    def test_detect_rejects_stale_store(self, tmp_path, model_dir, capsys):
        first = tmp_path / "first"
        second = tmp_path / "second"
        main(["crawl", str(first), "--scale", "0.0002", "--seed", "7"])
        main(["crawl", str(second), "--scale", "0.0005", "--seed", "8"])
        store_dir = tmp_path / "columnar"
        main(["analyze", str(model_dir), str(first), str(store_dir)])
        capsys.readouterr()
        with pytest.raises(SystemExit, match="re-run `cats analyze`"):
            main(
                [
                    "detect",
                    str(model_dir),
                    str(second),
                    "--store",
                    str(store_dir),
                ]
            )

    def test_analyze_missing_comments(self, tmp_path, model_dir):
        with pytest.raises(SystemExit):
            main(
                [
                    "analyze",
                    str(model_dir),
                    str(tmp_path / "nowhere"),
                    str(tmp_path / "columnar"),
                ]
            )

    def test_cluster_serve_rejects_columnar_store(self, model_dir, tmp_path):
        with pytest.raises(SystemExit, match="per-process"):
            main(
                [
                    "serve",
                    str(model_dir),
                    "--shards",
                    "2",
                    "--columnar-store",
                    str(tmp_path / "columnar"),
                ]
            )


class TestEvaluateCommand:
    def test_evaluate_prints_table(self, model_dir, capsys):
        rc = main(
            ["evaluate", str(model_dir), "--scale", "0.0005", "--seed", "9"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "Precision" in out
        assert "overall fraud items" in out


@pytest.fixture(scope="module")
def registry_dir(tmp_path_factory, model_dir):
    """A registry with the CLI model registered twice; v1 promoted."""
    root = tmp_path_factory.mktemp("cli_registry")
    main(["models", "register", str(root), str(model_dir), "--note", "v1"])
    main(["models", "register", str(root), str(model_dir), "--parent", "1"])
    main(["models", "promote", str(root), "1"])
    return root


class TestModelsCommand:
    def test_list(self, registry_dir, capsys):
        rc = main(["models", "list", str(registry_dir)])
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["champion"] == 1
        assert [v["version"] for v in payload["versions"]] == [1, 2]
        assert payload["versions"][0]["status"] == "champion"

    def test_show(self, registry_dir, capsys):
        rc = main(["models", "show", str(registry_dir), "2"])
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["version"] == 2
        assert payload["parent"] == 1
        assert len(payload["content_hash"]) == 64
        assert payload["feature_schema"]

    def test_show_unknown_version_exits(self, registry_dir):
        with pytest.raises(SystemExit):
            main(["models", "show", str(registry_dir), "42"])

    def test_promote_swaps(self, registry_dir, capsys):
        main(["models", "promote", str(registry_dir), "2"])
        payload = json.loads(capsys.readouterr().out)
        assert payload == {"promoted": 2, "previous": 1}
        main(["models", "promote", str(registry_dir), "1"])
        capsys.readouterr()

    def test_register_non_archive_exits(self, registry_dir, tmp_path):
        with pytest.raises(SystemExit):
            main(["models", "register", str(registry_dir), str(tmp_path)])


class TestReplayCommand:
    @pytest.fixture(scope="class")
    def recording(self, tmp_path_factory, trained_cats, taobao_platform):
        from repro.mlops import TrafficRecorder
        from tests.serving.conftest import interleaved_feed

        path = tmp_path_factory.mktemp("cli_rec") / "traffic.jsonl"
        recorder = TrafficRecorder(path)
        recorder.record(interleaved_feed(taobao_platform, n_items=10))
        recorder.close()
        return path

    def test_single_model_replay(self, model_dir, recording, capsys):
        rc = main(["replay", str(model_dir), str(recording)])
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["n_items"] > 0
        assert "flagged" in payload

    def test_registry_champion_replay(self, registry_dir, recording, capsys):
        rc = main(["replay", str(registry_dir), str(recording)])
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["model"]["version"] == 1

    def test_challenger_comparison(self, registry_dir, recording, capsys):
        rc = main(
            [
                "replay", str(registry_dir), str(recording),
                "--challenger-version", "2", "--top", "3",
            ]
        )
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        # v1 and v2 are byte-identical archives: zero disagreement.
        assert payload["comparison"]["flipped_verdicts"] == 0
        assert payload["comparison"]["max_abs_delta"] == 0.0
        assert payload["challenger"]["model"]["version"] == 2

    def test_missing_recording_exits(self, model_dir, tmp_path):
        with pytest.raises(SystemExit):
            main(["replay", str(model_dir), str(tmp_path / "no.jsonl")])

    def test_version_on_plain_dir_exits(self, model_dir, recording):
        with pytest.raises(SystemExit):
            main(
                ["replay", str(model_dir), str(recording), "--version", "1"]
            )
