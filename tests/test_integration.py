"""End-to-end integration: the full paper workflow at miniature scale.

Train the analyzer, pre-train the detector on D0, evaluate on a D1-style
imbalanced set, then crawl an E-platform website and run cross-platform
detection with the audit -- the complete Sections II-IV pipeline.
"""

import numpy as np
import pytest

from repro.analysis.adapters import crawled_view
from repro.core.pipeline import (
    audit_reported_items,
    evaluate_on_dataset,
    run_crawl,
)
from repro.datasets.builders import build_d1
from repro.ml.metrics import precision_recall_f1


class TestEndToEnd:
    def test_d1_evaluation(self, trained_cats, language):
        d1 = build_d1(language, scale=0.0008, seed=41)
        result, report = evaluate_on_dataset(trained_cats, d1)
        # Miniature-scale sanity bands; the benchmarks check the paper
        # bands at larger scale.
        assert result.recall > 0.5
        assert result.precision > 0.3
        assert report.filter_report["passed"] > 0

    def test_crawl_then_detect_cross_platform(
        self, trained_cats, eplatform
    ):
        store, crawler = run_crawl(
            eplatform, failure_rate=0.05, duplicate_rate=0.02, seed=11
        )
        # Cleaning recovered the exact platform comment count.
        assert store.summary()["comments"] == eplatform.n_comments
        crawled = store.crawled_items()
        report = trained_cats.detect(crawled)
        labels = np.array(
            [
                1 if eplatform.item_by_id(ci.item_id).is_fraud else 0
                for ci in crawled
            ]
        )
        if labels.sum() and report.n_reported:
            __, recall, __f = precision_recall_f1(
                labels, report.is_fraud.astype(int)
            )
            assert recall > 0.3
            audit = audit_reported_items(
                eplatform, crawled, report, sample_size=100, seed=3
            )
            assert audit["n_audited"] > 0

    def test_detection_deterministic(self, trained_cats, d0_small):
        items = d0_small.items[:40]
        a = trained_cats.detect(items)
        b = trained_cats.detect(items)
        np.testing.assert_array_equal(a.is_fraud, b.is_fraud)
        np.testing.assert_array_equal(
            a.fraud_probability, b.fraud_probability
        )

    def test_rule_filter_integrated(self, trained_cats, taobao_platform):
        dead = [i for i in taobao_platform.items if i.sales_volume < 5]
        if not dead:
            pytest.skip("no dead items generated")
        report = trained_cats.detect(dead)
        assert report.n_reported == 0
        assert not report.passed_filter.any()
