"""Tests for repro.serving.service (DetectionService)."""

from __future__ import annotations

import threading

import pytest

from repro.core.streaming import StreamingDetector
from repro.serving import DetectionService, QueueFullError


@pytest.fixture()
def service(trained_cats):
    svc = DetectionService(
        trained_cats, rescore_growth=1.0, max_batch=16, max_delay_ms=2
    ).start()
    yield svc
    svc.stop()


class TestBasics:
    def test_ingest_acknowledges_and_dedupes(self, service, feed):
        first = service.ingest(feed[:50])
        assert first.accepted == 50
        assert first.duplicates == 0
        replay = service.ingest(feed[:50])
        assert replay.accepted == 0
        assert replay.duplicates == 50

    def test_score_matches_plain_streaming_detector(
        self, trained_cats, service, feed, feed_item_ids
    ):
        service.ingest(feed)
        reference = StreamingDetector(trained_cats, rescore_growth=1.0)
        reference.observe_many(feed)
        expected = reference.force_rescore_many(feed_item_ids)
        assert service.score(feed_item_ids) == expected
        assert service.alerts() == reference.alerts

    def test_score_unknown_item_fails_only_that_request(self, service, feed):
        service.ingest(feed[:50])
        known = feed[0].item_id
        bad = service.submit_score([known, 404404])
        good = service.submit_score([known])
        with pytest.raises(KeyError):
            bad.result(timeout=10)
        assert known in good.result(timeout=10)

    def test_sales_updates_apply(self, service, feed):
        service.ingest(feed[:5])
        item_id = feed[0].item_id
        service.submit_sales(item_id, 5000).result(timeout=10)
        assert service.stream._items[item_id].sales_volume == 5000

    def test_healthz_and_stats(self, service, feed):
        service.ingest(feed[:30])
        health = service.healthz()
        assert health["status"] == "ok"
        assert health["uptime_s"] >= 0
        stats = service.stats()
        assert stats["records_observed"] == 30
        assert stats["processed"] >= 1
        assert stats["items_tracked"] >= 1

    def test_packed_predictor_engaged(self, service, feed, feed_item_ids):
        """Smoke test that serving scores run through the packed
        inference arena, not a per-tree fallback (counters in /stats)."""
        service.ingest(feed)
        service.score(feed_item_ids[:5])
        stats = service.stats()
        assert stats["packed_predict_calls"] >= 1
        assert stats["packed_rows_scored"] >= 5

    def test_stopped_service_reports_and_rejects(self, trained_cats):
        svc = DetectionService(trained_cats).start()
        svc.stop()
        assert svc.healthz()["status"] == "stopped"
        with pytest.raises(Exception):
            svc.ingest([])


class TestBackpressure:
    def test_overload_sheds_with_queue_full(self, trained_cats, feed):
        svc = DetectionService(
            trained_cats,
            rescore_growth=1.0,
            max_batch=1,
            max_delay_ms=0,
            queue_depth=2,
        ).start()
        rejected = 0
        futures = []
        for record in feed[:200]:
            try:
                futures.append(svc.submit_ingest([record]))
            except QueueFullError:
                rejected += 1
        svc.stop(drain=True)
        assert rejected > 0
        assert all(future.done() for future in futures)
        accepted = sum(f.result().accepted for f in futures)
        assert accepted == len(futures)
        assert svc.stats()["rejected"] == rejected


class TestThreadedSmoke:
    def test_no_lost_or_duplicated_responses(
        self, trained_cats, feed, feed_item_ids
    ):
        """Hammer the service from N threads; every request must get
        exactly one response and every record must land exactly once."""
        svc = DetectionService(
            trained_cats,
            rescore_growth=1.0,
            max_batch=8,
            max_delay_ms=1,
            queue_depth=4096,
        ).start()
        n_threads = 8
        shards = [feed[i::n_threads] for i in range(n_threads)]
        results = [[] for _ in range(n_threads)]
        errors: list[BaseException] = []

        def client(index: int) -> None:
            try:
                for record in shards[index]:
                    ack = svc.ingest([record], timeout=30)
                    results[index].append(ack)
                    svc.score([record.item_id], timeout=30)
            except BaseException as exc:  # noqa: BLE001
                errors.append(exc)

        threads = [
            threading.Thread(target=client, args=(i,))
            for i in range(n_threads)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120)
        assert not errors, errors
        acks = [ack for shard in results for ack in shard]
        assert len(acks) == len(feed)
        assert sum(a.accepted for a in acks) == len(feed)
        assert sum(a.duplicates for a in acks) == 0
        stats = svc.stats()
        assert stats["records_observed"] == len(feed)
        assert stats["submitted"] == stats["processed"] == 2 * len(feed)
        # The same stream state as any single-threaded order: per-item
        # buffers are order-independent sets of unique records.
        for item_id in feed_item_ids:
            expected = [r for r in feed if r.item_id == item_id]
            assert len(svc.stream._items[item_id].comments) == len(expected)
        svc.stop()


class TestCheckpointing:
    def test_periodic_and_final_checkpoints(
        self, trained_cats, feed, tmp_path
    ):
        svc = DetectionService(
            trained_cats,
            rescore_growth=1.0,
            max_batch=16,
            max_delay_ms=1,
            checkpoint_dir=str(tmp_path / "ckpts"),
            checkpoint_every=50,
        ).start()
        for start in range(0, 200, 20):
            svc.ingest(feed[start : start + 20])
        assert svc.n_checkpoints_written >= 3
        svc.stop()
        final = svc.n_checkpoints_written
        assert final >= 4  # stop() writes the tail

    def test_restart_resumes_identically(
        self, trained_cats, feed, feed_item_ids, tmp_path
    ):
        ckpt_dir = str(tmp_path / "ckpts")
        first = DetectionService(
            trained_cats,
            rescore_growth=1.0,
            checkpoint_dir=ckpt_dir,
            checkpoint_every=40,
            max_delay_ms=1,
        ).start()
        first.ingest(feed)
        expected = first.score(feed_item_ids)
        first.stop()

        second = DetectionService(
            trained_cats, checkpoint_dir=ckpt_dir
        ).start()
        assert second.restored_from is not None
        assert second.stream.n_observed == len(feed)
        assert second.score(feed_item_ids) == expected
        assert second.alerts() == first.alerts()
        second.stop()

    def test_idle_stop_does_not_rotate_out_real_generations(
        self, trained_cats, feed, tmp_path
    ):
        """Regression: stop() used to force-write a checkpoint even
        when nothing changed, so every restart-then-stop cycle rotated
        a byte-duplicate generation in and (with keep=3) a real older
        generation out of the fallback window."""
        ckpt_dir = tmp_path / "ckpts"

        def generations() -> list[str]:
            return sorted(p.name for p in ckpt_dir.iterdir())

        first = DetectionService(
            trained_cats,
            rescore_growth=1.0,
            checkpoint_dir=str(ckpt_dir),
            checkpoint_every=40,
            max_delay_ms=1,
        ).start()
        first.ingest(feed[:100])
        first.stop()
        after_traffic = generations()
        assert after_traffic  # at least the final checkpoint landed

        # Three idle restart/stop cycles: no progress, no new writes.
        for _ in range(3):
            idle = DetectionService(
                trained_cats, checkpoint_dir=str(ckpt_dir)
            ).start()
            assert idle.restored_from is not None
            assert idle.stop() is True
            assert idle.n_checkpoints_written == 0
        assert generations() == after_traffic

        # Real progress still gets its final checkpoint on stop.
        active = DetectionService(
            trained_cats,
            rescore_growth=1.0,
            checkpoint_dir=str(ckpt_dir),
            checkpoint_every=10_000,
            max_delay_ms=1,
        ).start()
        active.ingest(feed[100:120])
        active.stop()
        assert active.n_checkpoints_written == 1
        assert generations() != after_traffic

    def test_sales_only_session_checkpoints_on_stop(
        self, trained_cats, feed, tmp_path
    ):
        """Sales updates move durable state without moving n_observed;
        the final checkpoint must still cover them."""
        ckpt_dir = str(tmp_path / "ckpts")
        first = DetectionService(
            trained_cats,
            rescore_growth=1.0,
            checkpoint_dir=ckpt_dir,
            max_delay_ms=1,
        ).start()
        first.ingest(feed[:10])
        first.stop()

        item_id = feed[0].item_id
        second = DetectionService(
            trained_cats, checkpoint_dir=ckpt_dir, max_delay_ms=1
        ).start()
        second.submit_sales(item_id, 31337).result(timeout=10)
        second.stop()
        assert second.n_checkpoints_written == 1

        third = DetectionService(trained_cats, checkpoint_dir=ckpt_dir)
        assert third.stream._items[item_id].sales_volume == 31337

    def test_checkpoint_failure_does_not_break_scoring(
        self, trained_cats, feed, tmp_path, monkeypatch
    ):
        svc = DetectionService(
            trained_cats,
            rescore_growth=1.0,
            checkpoint_dir=str(tmp_path / "ckpts"),
            checkpoint_every=10,
            max_delay_ms=1,
        ).start()

        def boom(state):
            raise OSError("disk on fire")

        monkeypatch.setattr(svc.checkpoints, "save", boom)
        ack = svc.ingest(feed[:40])
        assert ack.accepted == 40
        stats = svc.stats()
        assert stats["checkpoint_failures"] >= 1
        assert "disk on fire" in stats["last_checkpoint_error"]
        svc._batcher.stop()  # skip stop()'s final checkpoint (also boom)
