"""Tests for repro.serving.httpd (stdlib HTTP front end)."""

from __future__ import annotations

import dataclasses
import json
import threading
import time

import pytest

from repro.serving import DetectionService, make_server
from repro.serving.httpd import parse_comment_row


@pytest.fixture()
def served(trained_cats):
    """(service, client) around a live localhost server."""
    import http.client

    service = DetectionService(
        trained_cats, rescore_growth=1.0, max_batch=16, max_delay_ms=2
    ).start()
    server = make_server(service, port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()

    class Client:
        def __init__(self, port: int) -> None:
            self.port = port

        def request(self, method, path, body=None):
            conn = http.client.HTTPConnection(
                "127.0.0.1", self.port, timeout=30
            )
            try:
                conn.request(
                    method,
                    path,
                    body=json.dumps(body) if body is not None else None,
                    headers={"Content-Type": "application/json"},
                )
                response = conn.getresponse()
                return response.status, json.loads(response.read())
            finally:
                conn.close()

    yield service, Client(server.server_address[1])
    server.shutdown()
    server.server_close()
    service.stop()


class TestRowParsing:
    def test_asdict_shape(self, feed):
        row = dataclasses.asdict(feed[0])
        assert parse_comment_row(row) == feed[0]

    def test_listing2_shape(self, feed):
        record = feed[0]
        row = {
            "item_id": record.item_id,
            "comment_id": record.comment_id,
            "comment_content": record.content,
            "nickname": record.nickname,
            "userExpValue": record.user_exp_value,
            "client_information": record.client,
            "date": record.date,
        }
        assert parse_comment_row(row) == record

    def test_bad_row_rejected(self):
        from repro.collector.records import RecordParseError

        with pytest.raises(RecordParseError):
            parse_comment_row({"item_id": 1})
        with pytest.raises(RecordParseError):
            parse_comment_row("not an object")


class TestEndpoints:
    def test_healthz(self, served):
        _, client = served
        status, body = client.request("GET", "/healthz")
        assert status == 200
        assert body["status"] == "ok"

    def test_ingest_then_score_and_alerts(
        self, served, trained_cats, feed, feed_item_ids
    ):
        from repro.core.streaming import StreamingDetector

        _, client = served
        rows = [dataclasses.asdict(record) for record in feed]
        status, ack = client.request(
            "POST", "/ingest", {"comments": rows}
        )
        assert status == 200
        assert ack["accepted"] == len(feed)
        assert ack["duplicates"] == 0

        status, scored = client.request(
            "POST", "/score", {"item_ids": feed_item_ids}
        )
        assert status == 200
        reference = StreamingDetector(trained_cats, rescore_growth=1.0)
        reference.observe_many(feed)
        expected = reference.force_rescore_many(feed_item_ids)
        assert {
            int(item_id): probability
            for item_id, probability in scored["probabilities"].items()
        } == expected

        status, alerts = client.request("GET", "/alerts")
        assert status == 200
        assert alerts["count"] == len(reference.alerts)
        assert alerts["alerts"] == [
            dataclasses.asdict(a) for a in reference.alerts
        ]

    def test_ingest_sales_updates(self, served, feed):
        service, client = served
        item_id = feed[0].item_id
        rows = [dataclasses.asdict(record) for record in feed[:5]]
        status, ack = client.request(
            "POST",
            "/ingest",
            {"comments": rows, "sales": [[item_id, 9999]]},
        )
        assert status == 200
        assert ack["sales_updates"] == 1
        assert service.stream._items[item_id].sales_volume == 9999

    def test_stats(self, served, feed):
        _, client = served
        rows = [dataclasses.asdict(record) for record in feed[:20]]
        client.request("POST", "/ingest", {"comments": rows})
        status, stats = client.request("GET", "/stats")
        assert status == 200
        assert stats["records_observed"] == 20
        assert stats["queue_capacity"] == 256


class TestErrorMapping:
    def test_unknown_path(self, served):
        _, client = served
        assert client.request("GET", "/nope")[0] == 404
        assert client.request("POST", "/nope", {})[0] == 404

    def test_unknown_item_is_404(self, served):
        _, client = served
        status, body = client.request(
            "POST", "/score", {"item_ids": [987654321]}
        )
        assert status == 404
        assert "987654321" in body["error"]

    def test_malformed_bodies_are_400(self, served):
        _, client = served
        assert client.request("POST", "/ingest", {"comments": [{}]})[0] == 400
        assert client.request("POST", "/ingest", {"comments": 7})[0] == 400
        assert client.request("POST", "/score", {"wrong": 1})[0] == 400
        assert client.request("POST", "/score", None)[0] == 400

    def test_stopping_service_is_503(self, served):
        service, client = served
        service._batcher.stop()
        status, _ = client.request(
            "POST", "/score", {"item_ids": [1]}
        )
        assert status == 503

    def test_malformed_sales_rows_are_400_not_dropped(self, served):
        """Regression: a sales row like ``[1]`` or ``[null, 5]`` used
        to raise an uncaught TypeError inside the handler, dropping the
        connection instead of answering.  Getting *any* status back
        proves the connection survived; it must be a 400."""
        _, client = served
        for body in (
            {"sales": [[1]]},
            {"sales": [7]},
            {"sales": [[None, 5]]},
            {"sales": [[1, 2, 3]]},
            {"sales": "nope"},
            {"comments": [], "sales": [["x", "y"]]},
        ):
            status, payload = client.request("POST", "/ingest", body)
            assert status == 400, body
            assert "error" in payload

    def test_null_item_ids_are_400_not_dropped(self, served):
        _, client = served
        status, payload = client.request(
            "POST", "/score", {"item_ids": [None]}
        )
        assert status == 400
        assert "error" in payload
        assert client.request("POST", "/score", {"item_ids": 3})[0] == 400


class TestAtomicAcknowledgement:
    """An /ingest acknowledgement must never lie about partial work."""

    @pytest.fixture()
    def gated_served(self, trained_cats):
        """A served service whose scheduler blocks until released,
        with a 2-deep queue so tests control exactly how full it is."""
        import http.client

        service = DetectionService(
            trained_cats,
            rescore_growth=1.0,
            max_batch=1,
            max_delay_ms=0,
            queue_depth=2,
        )
        started = threading.Event()
        release = threading.Event()
        original = service._batcher._process_batch

        def gated(batch):
            started.set()
            release.wait(30)
            original(batch)

        service._batcher._process_batch = gated
        service.start()
        server = make_server(service, port=0)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()

        def request(method, path, body=None):
            conn = http.client.HTTPConnection(
                "127.0.0.1", server.server_address[1], timeout=60
            )
            try:
                conn.request(
                    method,
                    path,
                    body=json.dumps(body) if body is not None else None,
                    headers={"Content-Type": "application/json"},
                )
                response = conn.getresponse()
                return response.status, json.loads(response.read())
            finally:
                conn.close()

        yield service, request, started, release
        release.set()
        server.shutdown()
        server.server_close()
        service.stop()

    def _occupy_scheduler(self, service, started):
        """Park the scheduler inside the gate on a no-op batch."""
        service.submit_ingest([])
        assert started.wait(10)

    def test_ack_applies_everything_when_queue_has_room(
        self, gated_served, feed
    ):
        """Regression: sales updates were submitted as separate queue
        entries before the comment ingest, so with one free slot the
        sale got in, the ingest was shed, and the 503 acknowledgement
        lied (the sale still applied).  As one atomic entry the whole
        request fits the free slot and the ack reports all of it."""
        service, request, started, release = gated_served
        self._occupy_scheduler(service, started)
        service.submit_ingest([])  # one of two slots -> one free
        record = feed[0]
        body = {
            "comments": [dataclasses.asdict(record)],
            "sales": [[record.item_id, 7777]],
        }
        outcome = {}

        def post():
            outcome["response"] = request("POST", "/ingest", body)

        poster = threading.Thread(target=post)
        poster.start()
        # Give the request time to enqueue, then let the scheduler run.
        poster.join(timeout=0.5)
        release.set()
        poster.join(timeout=30)
        status, ack = outcome["response"]
        assert status == 200
        assert ack["accepted"] == 1
        assert ack["sales_updates"] == 1
        assert service.stream.n_observed == 1
        assert service.stream._items[record.item_id].sales_volume == 7777

    def test_shed_request_applies_nothing(self, gated_served, feed):
        """With the queue completely full the request is shed whole:
        503, and neither the comments nor the sales update land."""
        service, request, started, release = gated_served
        self._occupy_scheduler(service, started)
        service.submit_ingest([])
        service.submit_ingest([])  # queue now at capacity (2)
        record = feed[0]
        status, payload = request(
            "POST",
            "/ingest",
            {
                "comments": [dataclasses.asdict(record)],
                "sales": [[record.item_id, 7777]],
            },
        )
        assert status == 503
        assert "error" in payload
        release.set()
        deadline = time.monotonic() + 10
        while service._batcher.stats()["queue_depth"] > 0:
            assert time.monotonic() < deadline
            time.sleep(0.01)
        assert service.stream.n_observed == 0
        assert service._n_sales_updates == 0


class TestDriftEndpoint:
    def test_unconfigured_is_404(self, served):
        __, client = served
        status, payload = client.request("GET", "/drift")
        assert status == 404
        assert "not configured" in payload["error"]

    def test_drift_report_and_gauges(self, trained_cats, feed):
        import http.client

        import numpy as np

        from repro.core.streaming import StreamingDetector
        from repro.mlops import DriftMonitor, ReferenceHistogram

        captured = []
        reference_stream = StreamingDetector(trained_cats, rescore_growth=1.0)
        reference_stream.feature_observer = (
            lambda X: captured.append(np.array(X))
        )
        reference_stream.observe_many(feed)
        monitor = DriftMonitor(
            ReferenceHistogram.from_matrix(np.vstack(captured))
        )
        service = DetectionService(
            trained_cats,
            rescore_growth=1.0,
            max_delay_ms=2,
            drift_monitor=monitor,
            model_info={"version": 4, "content_hash": "c" * 64},
        ).start()
        server = make_server(service, port=0)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            conn = http.client.HTTPConnection(
                "127.0.0.1", server.server_address[1], timeout=30
            )
            conn.request(
                "POST",
                "/ingest",
                body=json.dumps(
                    {"comments": [dataclasses.asdict(r) for r in feed]}
                ),
                headers={"Content-Type": "application/json"},
            )
            ingest_response = conn.getresponse()
            ingest_response.read()
            assert ingest_response.status == 200
            conn.request("GET", "/drift")
            response = conn.getresponse()
            payload = json.loads(response.read())
            conn.close()
            assert response.status == 200
            assert payload["n_live_rows"] > 0
            # Live traffic IS the reference traffic here: no drift.
            assert payload["max_psi"] == 0.0
            assert payload["model"]["version"] == 4
            gauges = server.telemetry.snapshot()["gauges"]
            assert gauges["drift_max_psi"] == 0.0
            assert gauges["drift_live_rows"] == payload["n_live_rows"]
        finally:
            server.shutdown()
            server.server_close()
            service.stop()
