"""Columnar-store wiring through streaming, serving and checkpoints.

The store is an *observer* of the analysis path: everything the
streaming detector analyzes must land in the arena, checkpoints must
stamp (and restores must validate) the store generation, and the
``/stats`` surface must expose the store's counters.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.columnar import ColumnarCommentStore
from repro.core.streaming import StreamingDetector
from repro.serving import DetectionService


@pytest.fixture()
def store(trained_cats):
    return ColumnarCommentStore(trained_cats.analyzer.interner)


class TestStreamingAppends:
    def test_observed_comments_land_in_the_store(
        self, trained_cats, feed, store
    ):
        stream = StreamingDetector(
            trained_cats, rescore_growth=1.0, columnar_store=store
        )
        stream.observe_many(feed[:120])
        # Scoring triggers accumulation; anything the detector has
        # folded must be in the arena (never fewer, never analyzed
        # twice).
        item_ids = sorted({r.item_id for r in feed[:120]})
        stream.force_rescore_many(item_ids)
        stored = dict(
            zip(*np.unique(store.column("item_id"), return_counts=True))
        )
        for item_id in item_ids:
            state = stream._items[item_id]
            assert stored.get(item_id, 0) == state.n_accumulated
        assert store.n_appended_rows == store.n_comments

    def test_store_matrix_matches_detector_features(
        self, trained_cats, feed, store
    ):
        stream = StreamingDetector(
            trained_cats, rescore_growth=1.0, columnar_store=store
        )
        stream.observe_many(feed[:200])
        item_ids = sorted({r.item_id for r in feed[:200]})
        stream.force_rescore_many(item_ids)
        expected = np.vstack(
            [
                stream._items[item_id].accumulator.to_vector()
                for item_id in item_ids
            ]
        )
        assert np.array_equal(store.feature_matrix(item_ids), expected)


class TestCheckpointStamp:
    def make_service(self, trained_cats, tmp_path, store=None, **kwargs):
        return DetectionService(
            trained_cats,
            rescore_growth=1.0,
            checkpoint_dir=str(tmp_path / "ckpts"),
            checkpoint_every=1,
            columnar_store=store,
            **kwargs,
        )

    def run_feed(self, service, feed):
        service.start()
        try:
            service.ingest(feed)
            service.score(sorted({r.item_id for r in feed}))
        finally:
            service.stop()

    def test_checkpoint_stamped_and_store_saved(
        self, trained_cats, feed, tmp_path, store
    ):
        store.directory = tmp_path / "columnar"
        service = self.make_service(trained_cats, tmp_path, store)
        self.run_feed(service, feed[:80])
        state, _ = service.checkpoints.load_latest()
        stamp = state["columnar"]
        assert stamp["generation"] == store.generation >= 1
        assert stamp["n_comments"] == store.n_comments > 0
        # The stamped generation exists on disk (store saved *before*
        # the checkpoint referenced it).
        manifest = ColumnarCommentStore.read_manifest(store.directory)
        assert manifest["generation"] >= stamp["generation"]
        assert manifest["n_comments"] >= stamp["n_comments"]

    def test_restore_accepts_covering_store(
        self, trained_cats, feed, tmp_path, store
    ):
        store.directory = tmp_path / "columnar"
        service = self.make_service(trained_cats, tmp_path, store)
        self.run_feed(service, feed[:80])
        reopened = ColumnarCommentStore.attach(
            store.directory, trained_cats.analyzer
        )
        restored = self.make_service(trained_cats, tmp_path, reopened)
        assert restored.restored_from is not None

    def test_restore_rejects_store_behind_checkpoint(
        self, trained_cats, feed, tmp_path, store
    ):
        store.directory = tmp_path / "columnar"
        service = self.make_service(trained_cats, tmp_path, store)
        self.run_feed(service, feed[:80])
        empty = ColumnarCommentStore(trained_cats.analyzer.interner)
        with pytest.raises(ValueError, match="missing analyzed history"):
            self.make_service(trained_cats, tmp_path, empty)

    def test_unstamped_checkpoint_and_storeless_restore_pass(
        self, trained_cats, feed, tmp_path
    ):
        # No store: checkpoints carry no stamp and restore fine ...
        service = self.make_service(trained_cats, tmp_path)
        self.run_feed(service, feed[:40])
        state, _ = service.checkpoints.load_latest()
        assert "columnar" not in state
        restored = self.make_service(trained_cats, tmp_path)
        assert restored.restored_from is not None


class TestStatsSurface:
    def test_stats_expose_columnar_counters(
        self, trained_cats, feed, store
    ):
        service = DetectionService(
            trained_cats, rescore_growth=1.0, columnar_store=store
        ).start()
        try:
            service.ingest(feed[:60])
            service.score(sorted({r.item_id for r in feed[:60]}))
            stats = service.stats()
        finally:
            service.stop()
        assert stats["columnar_mode"] == "memory"
        assert stats["columnar_comments"] == store.n_comments > 0
        assert stats["columnar_appended_rows"] == store.n_appended_rows
        assert stats["columnar_generation"] == 0  # never saved
        assert "columnar_arena_bytes" in stats

    def test_no_store_no_columnar_keys(self, trained_cats, feed):
        service = DetectionService(
            trained_cats, rescore_growth=1.0
        ).start()
        try:
            service.ingest(feed[:20])
            stats = service.stats()
        finally:
            service.stop()
        assert not any(key.startswith("columnar_") for key in stats)
