"""Shared fixtures for the serving-layer tests.

The comment feed interleaves records across items round-robin (newest
page of every item, then the next page, ...), which is what a recurring
crawl of a live platform produces -- items grow gradually instead of
arriving fully formed.
"""

from __future__ import annotations

import pytest

from repro.analysis.adapters import comment_records_for_item
from repro.collector.records import CommentRecord


def interleaved_feed(platform, n_items: int = 25) -> list[CommentRecord]:
    """Round-robin comment feed over the platform's busiest items."""
    items = sorted(
        platform.items, key=lambda i: len(i.comments), reverse=True
    )[:n_items]
    per_item = [comment_records_for_item(platform, item) for item in items]
    feed: list[CommentRecord] = []
    depth = max(len(records) for records in per_item)
    for level in range(depth):
        for records in per_item:
            if level < len(records):
                feed.append(records[level])
    return feed


@pytest.fixture(scope="session")
def feed(taobao_platform) -> list[CommentRecord]:
    return interleaved_feed(taobao_platform)


@pytest.fixture(scope="session")
def feed_item_ids(feed) -> list[int]:
    return sorted({record.item_id for record in feed})
