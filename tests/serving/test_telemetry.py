"""Tests for repro.serving.telemetry (no trained model needed)."""

from __future__ import annotations

import threading

import pytest

from repro.serving.telemetry import TelemetryRegistry


class TestInstruments:
    def test_counter_counts(self):
        registry = TelemetryRegistry()
        registry.inc("requests")
        registry.inc("requests", 4)
        assert registry.counter("requests").value == 5

    def test_counter_rejects_negative(self):
        registry = TelemetryRegistry()
        with pytest.raises(ValueError):
            registry.counter("requests").inc(-1)

    def test_gauge_sets_and_moves(self):
        registry = TelemetryRegistry()
        gauge = registry.gauge("depth")
        gauge.set(10)
        gauge.inc(5)
        gauge.dec(2)
        assert gauge.value == 13

    def test_same_name_returns_same_instrument(self):
        registry = TelemetryRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert registry.gauge("b") is registry.gauge("b")

    def test_kind_collision_rejected(self):
        registry = TelemetryRegistry()
        registry.counter("x")
        with pytest.raises(ValueError, match="already a counter"):
            registry.gauge("x")
        registry.gauge("y")
        with pytest.raises(ValueError, match="already a gauge"):
            registry.counter("y")


class TestSnapshot:
    def test_snapshot_shape_and_compaction(self):
        registry = TelemetryRegistry()
        registry.inc("whole", 3)
        registry.inc("fractional", 0.5)
        registry.gauge("depth").set(7)
        snapshot = registry.snapshot()
        assert snapshot == {
            "counters": {"fractional": 0.5, "whole": 3},
            "gauges": {"depth": 7},
        }
        assert isinstance(snapshot["counters"]["whole"], int)

    def test_snapshot_is_sorted(self):
        registry = TelemetryRegistry()
        for name in ("zebra", "alpha", "mid"):
            registry.inc(name)
        assert list(registry.snapshot()["counters"]) == [
            "alpha",
            "mid",
            "zebra",
        ]

    def test_concurrent_increments_lose_nothing(self):
        registry = TelemetryRegistry()
        n_threads, per_thread = 8, 2000

        def hammer():
            for _ in range(per_thread):
                registry.inc("hits")

        threads = [threading.Thread(target=hammer) for _ in range(n_threads)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert registry.counter("hits").value == n_threads * per_thread


class TestMerge:
    def test_merge_sums_name_wise(self):
        a = TelemetryRegistry()
        a.inc("requests", 3)
        a.gauge("depth").set(2)
        b = TelemetryRegistry()
        b.inc("requests", 4)
        b.inc("only_b")
        b.gauge("depth").set(5)
        merged = TelemetryRegistry.merge([a.snapshot(), b.snapshot()])
        assert merged == {
            "counters": {"only_b": 1, "requests": 7},
            "gauges": {"depth": 7},
        }

    def test_merge_is_nestable(self):
        """A merge of merges equals the merge of all leaves (so a
        router of routers aggregates correctly)."""
        leaves = []
        for value in (1, 2, 3, 4):
            registry = TelemetryRegistry()
            registry.inc("n", value)
            leaves.append(registry.snapshot())
        pairwise = [
            TelemetryRegistry.merge(leaves[:2]),
            TelemetryRegistry.merge(leaves[2:]),
        ]
        assert TelemetryRegistry.merge(pairwise) == TelemetryRegistry.merge(
            leaves
        )

    def test_merge_empty(self):
        assert TelemetryRegistry.merge([]) == {
            "counters": {},
            "gauges": {},
        }
