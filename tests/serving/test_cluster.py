"""Tests for repro.serving.cluster (shared-nothing multi-process shards).

The integration tests spawn real ``repro.cli serve`` worker processes
behind a live router, so they cover the same surface as production:
routing by item id, cross-shard fan-out/fan-in, per-shard checkpoint
lineages, and SIGKILL recovery with bit-identical replay.
"""

from __future__ import annotations

import dataclasses
import json
from collections import Counter

import pytest

from repro.core.persistence import save_cats
from repro.core.streaming import StreamingDetector, shard_of
from repro.serving.cluster import (
    ShardCluster,
    aggregate_shard_stats,
    shard_checkpoint_dir,
)

N_SHARDS = 2


class TestShardOf:
    def test_range_and_determinism(self):
        for item_id in range(1, 500):
            owner = shard_of(item_id, 7)
            assert 0 <= owner < 7
            assert owner == shard_of(item_id, 7)

    def test_single_shard_owns_everything(self):
        assert all(shard_of(i, 1) == 0 for i in range(100))

    def test_partition_is_total(self):
        """Every id is owned by exactly one shard, and a realistic id
        population spreads across all of them."""
        owners = Counter(shard_of(i, 4) for i in range(1, 1000))
        assert sorted(owners) == [0, 1, 2, 3]

    def test_invalid_shard_count(self):
        with pytest.raises(ValueError):
            shard_of(1, 0)


class TestAggregation:
    def test_sums_known_numeric_counters(self):
        merged = aggregate_shard_stats(
            [
                {"records_observed": 10, "alerts": 1, "noise": "x"},
                {"records_observed": 32, "alerts": 0, "other": 9},
            ]
        )
        assert merged["records_observed"] == 42
        assert merged["alerts"] == 1
        assert "noise" not in merged
        assert "other" not in merged

    def test_merges_telemetry(self):
        merged = aggregate_shard_stats(
            [
                {"telemetry": {"counters": {"a": 1}, "gauges": {}}},
                {"telemetry": {"counters": {"a": 2, "b": 5}, "gauges": {}}},
            ]
        )
        assert merged["telemetry"]["counters"] == {"a": 3, "b": 5}

    def test_checkpoint_dir_layout(self, tmp_path):
        assert (
            shard_checkpoint_dir(tmp_path, 3) == tmp_path / "shard-0003"
        )


class TestShardStamp:
    """Checkpoints carry their partition; restores enforce it."""

    def shard_feed(self, feed, index: int, count: int):
        return [r for r in feed if shard_of(r.item_id, count) == index]

    def test_stamped_roundtrip(self, trained_cats, feed):
        detector = StreamingDetector(trained_cats, rescore_growth=1.0)
        detector.observe_many(self.shard_feed(feed, 1, 2))
        state = detector.export_state(shard=(1, 2))
        assert state["shard"] == {"shard_index": 1, "shard_count": 2}

        restored = StreamingDetector(trained_cats)
        restored.restore_state(state, expected_shard=(1, 2))
        assert restored.n_observed == detector.n_observed

    def test_wrong_stamp_rejected(self, trained_cats, feed):
        detector = StreamingDetector(trained_cats, rescore_growth=1.0)
        detector.observe_many(self.shard_feed(feed, 1, 2))
        state = detector.export_state(shard=(1, 2))
        with pytest.raises(ValueError, match="shard"):
            StreamingDetector(trained_cats).restore_state(
                state, expected_shard=(0, 2)
            )
        with pytest.raises(ValueError, match="shard"):
            StreamingDetector(trained_cats).restore_state(
                state, expected_shard=(1, 4)
            )

    def test_unstamped_snapshot_verified_item_by_item(
        self, trained_cats, feed
    ):
        """A pre-cluster (unstamped) checkpoint restores into the shard
        that owns its items and is rejected anywhere else."""
        detector = StreamingDetector(trained_cats, rescore_growth=1.0)
        detector.observe_many(self.shard_feed(feed, 0, 2))
        state = detector.export_state()  # no stamp
        assert "shard" not in state

        StreamingDetector(trained_cats).restore_state(
            state, expected_shard=(0, 2)
        )
        with pytest.raises(ValueError, match="shard"):
            StreamingDetector(trained_cats).restore_state(
                state, expected_shard=(1, 2)
            )


@pytest.fixture(scope="module")
def model_dir(trained_cats, d0_small, tmp_path_factory):
    directory = tmp_path_factory.mktemp("cluster-model")
    save_cats(trained_cats, directory)
    # A drift reference next to the archive turns on per-shard drift
    # monitoring, so the router's /drift fan-in is exercised too.
    from repro.mlops import ReferenceHistogram

    ReferenceHistogram.from_matrix(
        trained_cats.extract_features(d0_small.items[:150])
    ).save(directory)
    return directory


@pytest.fixture(scope="module")
def cluster(model_dir, tmp_path_factory):
    instance = ShardCluster(
        model_dir,
        N_SHARDS,
        checkpoint_root=tmp_path_factory.mktemp("cluster-ckpts"),
        worker_args=(
            "--max-delay-ms", "2",
            "--max-batch", "16",
            "--rescore-growth", "1.0",
            "--checkpoint-every", "40",
        ),
    )
    instance.start()
    yield instance
    instance.stop()


@pytest.fixture(scope="module")
def router(cluster):
    """A fresh-connection client against the cluster router."""
    import http.client

    def request(method, path, body=None):
        conn = http.client.HTTPConnection(
            cluster.host, cluster.port, timeout=60
        )
        try:
            conn.request(
                method,
                path,
                body=json.dumps(body) if body is not None else None,
                headers={"Content-Type": "application/json"},
            )
            response = conn.getresponse()
            return response.status, json.loads(response.read())
        finally:
            conn.close()

    return request


def feed_chunks(feed, n_chunks: int = 4):
    size = (len(feed) + n_chunks - 1) // n_chunks
    return [feed[i : i + size] for i in range(0, len(feed), size)]


class TestClusterServing:
    def test_end_to_end_routing_and_recovery(
        self, cluster, router, trained_cats, feed, feed_item_ids
    ):
        status, health = router("GET", "/healthz")
        assert status == 200
        assert health["n_shards"] == N_SHARDS
        assert health["shards_alive"] == N_SHARDS

        # -- ingest through the router, in several multi-shard posts --
        accepted = 0
        for chunk in feed_chunks(feed):
            status, ack = router(
                "POST",
                "/ingest",
                {"comments": [dataclasses.asdict(r) for r in chunk]},
            )
            assert status == 200
            accepted += ack["accepted"]
        assert accepted == len(feed)

        sales_item = feed[0].item_id
        status, ack = router(
            "POST", "/ingest", {"sales": [[sales_item, 4242]]}
        )
        assert status == 200
        assert ack["sales_updates"] == 1

        # -- partition correctness: each worker holds exactly the
        #    records its shard owns, and stamps its identity ----------
        owned = Counter(
            shard_of(r.item_id, N_SHARDS) for r in feed
        )
        for worker in cluster.workers:
            status, stats = worker.request("GET", "/stats")
            assert status == 200
            assert stats["shard_index"] == worker.shard_index
            assert stats["shard_count"] == N_SHARDS
            assert stats["records_observed"] == owned[worker.shard_index]
        assert min(owned.values()) > 0  # the feed really is split

        # -- cross-shard score fan-out matches one single-process run -
        reference = StreamingDetector(trained_cats, rescore_growth=1.0)
        reference.observe_many(feed)
        reference.update_sales(sales_item, 4242)
        expected = reference.force_rescore_many(feed_item_ids)
        status, scored = router(
            "POST", "/score", {"item_ids": feed_item_ids}
        )
        assert status == 200
        merged = {
            int(item_id): probability
            for item_id, probability in scored["probabilities"].items()
        }
        assert merged == expected

        # -- alert fan-in: same alerts, shard order aside -------------
        status, alerts = router("GET", "/alerts")
        assert status == 200
        assert sorted(
            alert["item_id"] for alert in alerts["alerts"]
        ) == sorted(alert.item_id for alert in reference.alerts)

        # -- aggregated stats and merged telemetry --------------------
        status, stats = router("GET", "/stats")
        assert status == 200
        assert stats["records_observed"] == len(feed)
        assert stats["shards_reporting"] == N_SHARDS
        assert len(stats["shards"]) == N_SHARDS
        assert stats["telemetry"]["counters"]["http_requests_ingest"] >= 2
        assert (
            stats["router"]["telemetry"]["counters"]["router_records_routed"]
            == len(feed)
        )

        # -- SIGKILL one shard: cluster degrades, others keep serving -
        cluster.kill_shard(0)
        status, health = router("GET", "/healthz")
        assert status == 503
        assert health["shards_alive"] == N_SHARDS - 1
        survivor_ids = [
            i for i in feed_item_ids if shard_of(i, N_SHARDS) == 1
        ]
        status, scored = router(
            "POST", "/score", {"item_ids": survivor_ids[:3]}
        )
        assert status == 200

        # -- restart + replay the full feed: bit-identical scores -----
        cluster.restart_shard(0)
        status, health = router("GET", "/healthz")
        assert status == 200
        for chunk in feed_chunks(feed):
            status, _ = router(
                "POST",
                "/ingest",
                {"comments": [dataclasses.asdict(r) for r in chunk]},
            )
            assert status == 200
        status, _ = router(
            "POST", "/ingest", {"sales": [[sales_item, 4242]]}
        )
        assert status == 200
        status, scored = router(
            "POST", "/score", {"item_ids": feed_item_ids}
        )
        assert status == 200
        replayed = {
            int(item_id): probability
            for item_id, probability in scored["probabilities"].items()
        }
        assert replayed == expected

    def test_router_validation_and_error_propagation(self, router):
        # Malformed bodies die at the router; no shard sees them.
        assert router("POST", "/ingest", {"sales": [[1]]})[0] == 400
        assert router("POST", "/ingest", {"comments": 7})[0] == 400
        assert router("POST", "/score", {"item_ids": [None]})[0] == 400
        assert router("POST", "/score", {"wrong": 1})[0] == 400
        assert router("GET", "/nope")[0] == 404
        assert router("POST", "/nope", {})[0] == 404
        # A shard's 404 (unknown item) propagates through the router.
        status, body = router(
            "POST", "/score", {"item_ids": [987654321]}
        )
        assert status == 404
        assert "987654321" in body["error"]
        # Empty requests short-circuit without touching any shard.
        assert router("POST", "/ingest", {"comments": []})[0] == 200
        assert router("POST", "/score", {"item_ids": []})[0] == 200

    def test_misrouted_record_rejected_by_worker(self, cluster, feed):
        """A worker refuses records another shard owns (router bug
        containment): 400, and no state is mutated."""
        wrong = next(
            r for r in feed if shard_of(r.item_id, N_SHARDS) == 1
        )
        worker = cluster.workers[0]
        _, before = worker.request("GET", "/stats")
        status, body = worker.request(
            "POST", "/ingest", {"comments": [dataclasses.asdict(wrong)]}
        )
        assert status == 400
        assert "shard" in body["error"]
        _, after = worker.request("GET", "/stats")
        assert after["records_observed"] == before["records_observed"]


class TestClusterDrift:
    """Router /drift fan-in (runs against the shared module cluster,
    after the end-to-end test has pushed traffic through it)."""

    def test_drift_fans_in_across_shards(self, cluster, router, feed):
        # Make sure both shards have observed something.
        status, __ = router(
            "POST",
            "/ingest",
            {"comments": [dataclasses.asdict(r) for r in feed[:60]]},
        )
        assert status == 200
        status, payload = router("GET", "/drift")
        assert status == 200
        assert payload["n_shards"] == N_SHARDS
        assert payload["shards_monitored"] == N_SHARDS
        assert len(payload["shards"]) == N_SHARDS
        assert payload["n_live_rows"] == sum(
            shard["n_live_rows"] for shard in payload["shards"]
        )
        assert payload["max_psi"] == pytest.approx(
            max(shard["max_psi"] for shard in payload["shards"])
        )
        for shard in payload["shards"]:
            assert shard["n_live_rows"] > 0
            assert shard["model"]["content_hash"]

    def test_unmonitored_cluster_is_404(
        self, trained_cats, tmp_path_factory
    ):
        plain_model = tmp_path_factory.mktemp("plain-model")
        save_cats(trained_cats, plain_model)
        instance = ShardCluster(
            plain_model,
            1,
            worker_args=("--max-delay-ms", "2"),
        )
        instance.start()
        try:
            import http.client

            conn = http.client.HTTPConnection(
                instance.host, instance.port, timeout=60
            )
            conn.request("GET", "/drift")
            response = conn.getresponse()
            payload = json.loads(response.read())
            conn.close()
            assert response.status == 404
            assert "not configured" in payload["error"]
        finally:
            instance.stop()
