"""Tests for repro.serving.batching (no trained model needed)."""

from __future__ import annotations

import threading
import time

import pytest

from repro.serving.batching import (
    BatcherStopped,
    MicroBatcher,
    QueueFullError,
)


def echo_processor(log):
    """A processor that records batch sizes and echoes payloads."""

    def process(batch):
        log.append([request.payload for request in batch])
        for request in batch:
            request.future.set_result(request.payload)

    return process


@pytest.fixture()
def batcher_log():
    return []


def make_batcher(log, **kwargs):
    defaults = dict(max_batch=4, max_delay=0.01, queue_depth=64)
    defaults.update(kwargs)
    batcher = MicroBatcher(echo_processor(log), **defaults)
    batcher.start()
    return batcher


class TestValidation:
    def test_bad_max_batch(self):
        with pytest.raises(ValueError):
            MicroBatcher(lambda b: None, max_batch=0)

    def test_bad_max_delay(self):
        with pytest.raises(ValueError):
            MicroBatcher(lambda b: None, max_delay=-1)

    def test_bad_queue_depth(self):
        with pytest.raises(ValueError):
            MicroBatcher(lambda b: None, queue_depth=0)

    def test_submit_before_start(self, batcher_log):
        batcher = MicroBatcher(echo_processor(batcher_log))
        with pytest.raises(BatcherStopped):
            batcher.submit("x", 1)


class TestCoalescing:
    def test_all_requests_answered_in_batches(self, batcher_log):
        batcher = make_batcher(batcher_log)
        futures = [batcher.submit("x", i) for i in range(10)]
        results = [future.result(timeout=5) for future in futures]
        batcher.stop()
        assert results == list(range(10))
        assert sum(len(sizes) for sizes in batcher_log) == 10
        assert max(len(sizes) for sizes in batcher_log) <= 4

    def test_deadline_flushes_partial_batch(self, batcher_log):
        batcher = make_batcher(batcher_log, max_batch=100, max_delay=0.02)
        future = batcher.submit("x", 7)
        assert future.result(timeout=5) == 7
        batcher.stop()
        assert batcher_log == [[7]]

    def test_max_batch_one_never_coalesces(self, batcher_log):
        batcher = make_batcher(batcher_log, max_batch=1, max_delay=0)
        futures = [batcher.submit("x", i) for i in range(5)]
        for future in futures:
            future.result(timeout=5)
        batcher.stop()
        assert all(len(batch) == 1 for batch in batcher_log)


class TestBackpressure:
    def test_queue_full_rejects_immediately(self):
        release = threading.Event()

        def blocking(batch):
            release.wait(5)
            for request in batch:
                request.future.set_result(None)

        batcher = MicroBatcher(
            blocking, max_batch=1, max_delay=0, queue_depth=2
        )
        batcher.start()
        futures = [batcher.submit("x", 0)]
        # Scheduler is now blocked; fill the queue behind it.
        deadline = time.monotonic() + 5
        while batcher.stats()["queue_depth"] < 2:
            futures.append(batcher.submit("x", len(futures)))
            assert time.monotonic() < deadline
        with pytest.raises(QueueFullError):
            batcher.submit("x", 99)
        assert batcher.stats()["rejected"] == 1
        release.set()
        for future in futures:
            future.result(timeout=5)
        batcher.stop()


class TestShutdown:
    def test_drain_processes_everything(self, batcher_log):
        batcher = make_batcher(batcher_log, max_batch=2, max_delay=1.0)
        futures = [batcher.submit("x", i) for i in range(9)]
        batcher.stop(drain=True)
        assert [future.result(timeout=1) for future in futures] == list(
            range(9)
        )
        assert batcher.stats()["processed"] == 9

    def test_abandon_fails_pending_futures(self):
        started = threading.Event()
        release = threading.Event()

        def blocking(batch):
            started.set()
            release.wait(5)
            for request in batch:
                request.future.set_result(None)

        batcher = MicroBatcher(
            blocking, max_batch=1, max_delay=0, queue_depth=64
        )
        batcher.start()
        first = batcher.submit("x", 0)
        assert started.wait(5)
        pending = [batcher.submit("x", i) for i in range(1, 6)]
        # Stop while the scheduler is still blocked on the first batch:
        # the queued requests must fail before it ever sees them.
        batcher.stop(drain=False, timeout=0.2)
        for future in pending:
            with pytest.raises(BatcherStopped):
                future.result(timeout=1)
        release.set()
        assert first.result(timeout=5) is None

    def test_submit_after_stop_raises(self, batcher_log):
        batcher = make_batcher(batcher_log)
        batcher.stop()
        with pytest.raises(BatcherStopped):
            batcher.submit("x", 1)

    def test_clean_stop_returns_true(self, batcher_log):
        batcher = make_batcher(batcher_log)
        assert batcher.stop() is True
        assert batcher.running is False

    def test_timed_out_stop_is_not_clean_and_blocks_restart(self):
        """A stop() whose join times out must not pretend it stopped.

        Regression: stop() used to clear the thread handle even when
        the scheduler was still draining, so ``running`` lied and a
        second start() could put two scheduler threads on the same
        processor (breaking the single-writer invariant).
        """
        started = threading.Event()
        release = threading.Event()

        def blocking(batch):
            started.set()
            release.wait(10)
            for request in batch:
                request.future.set_result(None)

        batcher = MicroBatcher(blocking, max_batch=1, max_delay=0)
        batcher.start()
        future = batcher.submit("x", 0)
        assert started.wait(5)
        # The scheduler is wedged inside the processor: the join times
        # out, the stop is not clean, and the thread handle survives.
        assert batcher.stop(drain=False, timeout=0.1) is False
        assert batcher._thread is not None
        assert batcher._thread.is_alive()
        with pytest.raises(RuntimeError, match="still draining"):
            batcher.start()
        # Once the old scheduler actually exits, start() works again.
        release.set()
        assert future.result(timeout=5) is None
        batcher._thread.join(timeout=5)
        batcher.start()
        assert batcher.running
        second = batcher.submit("x", 1)
        assert second.result(timeout=5) is None
        assert batcher.stop() is True


class TestFailureIsolation:
    def test_processor_exception_fails_batch_not_scheduler(self):
        calls = []

        def flaky(batch):
            calls.append(len(batch))
            if len(calls) == 1:
                raise RuntimeError("boom")
            for request in batch:
                request.future.set_result("ok")

        batcher = MicroBatcher(flaky, max_batch=1, max_delay=0)
        batcher.start()
        first = batcher.submit("x", 1)
        with pytest.raises(RuntimeError, match="boom"):
            first.result(timeout=5)
        second = batcher.submit("x", 2)
        assert second.result(timeout=5) == "ok"
        batcher.stop()

    def test_unresolved_future_is_failed(self):
        def forgetful(batch):
            pass  # resolves nothing

        batcher = MicroBatcher(forgetful, max_batch=1, max_delay=0)
        batcher.start()
        future = batcher.submit("x", 1)
        with pytest.raises(RuntimeError, match="resolved no result"):
            future.result(timeout=5)
        batcher.stop()


class TestStats:
    def test_latency_percentiles_reported(self, batcher_log):
        batcher = make_batcher(batcher_log, max_batch=2, max_delay=0.001)
        futures = [batcher.submit("x", i) for i in range(20)]
        for future in futures:
            future.result(timeout=5)
        batcher.stop()
        stats = batcher.stats()
        assert stats["submitted"] == 20
        assert stats["processed"] == 20
        assert stats["batch_latency_p50_ms"] >= 0
        assert (
            stats["batch_latency_p99_ms"] >= stats["batch_latency_p50_ms"]
        )

    def test_percentiles_use_nearest_rank(self):
        """Regression: p99 used to floor to int(q*(n-1)), reporting
        ~p96 on small windows (25 samples 1..25 ms gave 24 ms)."""
        batcher = MicroBatcher(lambda batch: None)
        for ms in range(1, 26):
            batcher._batch_latencies.append(ms / 1000.0)
            batcher._batch_sizes.append(1)
        stats = batcher.stats()
        assert stats["batch_latency_p99_ms"] == 25.0
        assert stats["batch_latency_p50_ms"] == 13.0
