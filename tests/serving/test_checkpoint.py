"""Tests for repro.serving.checkpoint.

The property that matters: a detector restored from a checkpoint taken
at *any* cut point of a feed must behave bit-identically to one that
never stopped -- same feature vectors, same probabilities, same
subsequent alerts.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core.streaming import StreamingDetector
from repro.serving.checkpoint import (
    CheckpointError,
    CheckpointManager,
)


@pytest.fixture()
def manager(tmp_path):
    return CheckpointManager(tmp_path / "ckpts", keep=3)


def run_detector(trained_cats, records):
    detector = StreamingDetector(trained_cats, rescore_growth=1.0)
    detector.observe_many(records)
    return detector


class TestManager:
    def test_validation(self, tmp_path):
        with pytest.raises(ValueError):
            CheckpointManager(tmp_path, keep=0)

    def test_empty_directory_loads_nothing(self, manager):
        assert manager.load_latest() is None
        assert manager.latest_path() is None

    def test_save_load_round_trip(self, manager, trained_cats, feed):
        detector = run_detector(trained_cats, feed[:80])
        state = detector.export_state()
        path = manager.save(state)
        assert path.is_dir()
        assert (path / "state.json").is_file()
        assert (path / "sums.npz").is_file()
        loaded, loaded_path = manager.load_latest()
        assert loaded_path == path
        assert loaded == state

    def test_float_sums_live_in_npz_not_json(
        self, manager, trained_cats, feed
    ):
        detector = run_detector(trained_cats, feed[:80])
        path = manager.save(detector.export_state())
        payload = json.loads(
            (path / "state.json").read_text(encoding="utf-8")
        )
        assert payload["items"], "expected tracked items"
        for entry in payload["items"]:
            assert "last_probability" not in entry
            assert "sum_sentiment" not in entry["accumulator"]
        arrays = np.load(path / "sums.npz")
        assert len(arrays["item_id"]) == len(payload["items"])

    def test_prune_keeps_newest(self, manager, trained_cats, feed):
        detector = run_detector(trained_cats, feed[:20])
        paths = [
            manager.save(detector.export_state()) for _ in range(5)
        ]
        remaining = sorted(
            p.name for p in manager.directory.iterdir()
        )
        assert remaining == sorted(p.name for p in paths[-3:])

    def test_tmp_directories_are_ignored(
        self, manager, trained_cats, feed
    ):
        detector = run_detector(trained_cats, feed[:20])
        good = manager.save(detector.export_state())
        (manager.directory / "ckpt-99999999.tmp").mkdir()
        assert manager.latest_path() == good

    def test_corrupt_latest_falls_back(
        self, manager, trained_cats, feed
    ):
        detector = run_detector(trained_cats, feed[:20])
        good_state = detector.export_state()
        manager.save(good_state)
        detector.observe_many(feed[20:40])
        bad = manager.save(detector.export_state())
        (bad / "state.json").write_text("{ torn", encoding="utf-8")
        loaded, path = manager.load_latest()
        assert path.name < bad.name
        assert loaded == good_state

    def test_all_corrupt_raises(self, manager, trained_cats, feed):
        detector = run_detector(trained_cats, feed[:20])
        path = manager.save(detector.export_state())
        (path / "sums.npz").unlink()
        with pytest.raises(CheckpointError):
            manager.load_latest()


class TestRoundTripProperty:
    @pytest.mark.parametrize("cut_fraction", [0.1, 0.33, 0.5, 0.8, 1.0])
    def test_restore_matches_uninterrupted_run(
        self, tmp_path, trained_cats, feed, feed_item_ids, cut_fraction
    ):
        """save -> restore -> replay == never interrupted, bit-exact."""
        cut = int(len(feed) * cut_fraction)

        uninterrupted = StreamingDetector(trained_cats, rescore_growth=1.0)
        uninterrupted.observe_many(feed)

        first_half = StreamingDetector(trained_cats, rescore_growth=1.0)
        first_half.observe_many(feed[:cut])
        manager = CheckpointManager(tmp_path / f"ckpt-{cut}")
        manager.save(first_half.export_state())

        state, _ = manager.load_latest()
        restored = StreamingDetector.from_state(trained_cats, state)
        assert restored.n_observed == cut
        restored.observe_many(feed[cut:])

        assert restored.alerts == uninterrupted.alerts
        assert restored.n_items_tracked == uninterrupted.n_items_tracked
        for item_id in feed_item_ids:
            assert restored.probability(item_id) == (
                uninterrupted.probability(item_id)
            )
            np.testing.assert_array_equal(
                restored._items[item_id].accumulator.to_vector(),
                uninterrupted._items[item_id].accumulator.to_vector(),
            )

    def test_subsequent_forced_scores_identical(
        self, tmp_path, trained_cats, feed, feed_item_ids
    ):
        cut = len(feed) // 2
        uninterrupted = StreamingDetector(trained_cats, rescore_growth=1.0)
        uninterrupted.observe_many(feed)

        manager = CheckpointManager(tmp_path / "ckpt")
        half = StreamingDetector(trained_cats, rescore_growth=1.0)
        half.observe_many(feed[:cut])
        manager.save(half.export_state())
        state, _ = manager.load_latest()
        restored = StreamingDetector.from_state(trained_cats, state)
        restored.observe_many(feed[cut:])

        assert restored.force_rescore_many(feed_item_ids) == (
            uninterrupted.force_rescore_many(feed_item_ids)
        )

    def test_restored_policy_wins_over_constructor(
        self, tmp_path, trained_cats, feed
    ):
        source = StreamingDetector(
            trained_cats,
            rescore_growth=1.5,
            min_comments_to_score=4,
            max_tracked_items=10,
        )
        source.observe_many(feed[:30])
        manager = CheckpointManager(tmp_path / "ckpt")
        manager.save(source.export_state())
        state, _ = manager.load_latest()
        restored = StreamingDetector.from_state(trained_cats, state)
        assert restored.rescore_growth == 1.5
        assert restored.min_comments_to_score == 4
        assert restored.max_tracked_items == 10
