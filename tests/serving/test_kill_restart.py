"""The durability acceptance test for the serving subsystem.

kill -9 the serving process mid-stream, restart it from the latest
checkpoint, replay the remainder of the feed, and assert the final
scores and alert set are identical to an uninterrupted run.  The
restarted server reports how far its checkpoint got via
``records_observed`` in ``/stats``; because the feed contains no
duplicates, that count is exactly the replay position.
"""

from __future__ import annotations

import dataclasses
import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.core.persistence import load_cats, save_cats
from repro.core.streaming import StreamingDetector

CHECKPOINT_EVERY = 40
CHUNK = 10


@pytest.fixture(scope="session")
def model_dir(trained_cats, tmp_path_factory) -> Path:
    directory = tmp_path_factory.mktemp("served-model")
    save_cats(trained_cats, directory)
    return directory


class ServerProcess:
    """A ``repro serve`` subprocess plus a tiny HTTP client for it."""

    def __init__(self, model_dir: Path, checkpoint_dir: Path) -> None:
        env = dict(os.environ)
        src = str(Path(__file__).resolve().parents[2] / "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        self.proc = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro.cli",
                "serve",
                str(model_dir),
                "--port",
                "0",
                "--checkpoint-dir",
                str(checkpoint_dir),
                "--checkpoint-every",
                str(CHECKPOINT_EVERY),
                "--rescore-growth",
                "1.0",
                "--max-batch",
                "16",
                "--max-delay-ms",
                "2",
            ],
            env=env,
            stdout=subprocess.PIPE,
            stderr=subprocess.DEVNULL,
            text=True,
        )
        announcement = json.loads(self.proc.stdout.readline())
        assert announcement["serving"] is True
        self.host = announcement["host"]
        self.port = announcement["port"]

    def request(self, method: str, path: str, body=None):
        import http.client

        conn = http.client.HTTPConnection(self.host, self.port, timeout=60)
        try:
            conn.request(
                method,
                path,
                body=json.dumps(body) if body is not None else None,
                headers={"Content-Type": "application/json"},
            )
            response = conn.getresponse()
            return response.status, json.loads(response.read())
        finally:
            conn.close()

    def ingest(self, records) -> int:
        rows = [dataclasses.asdict(record) for record in records]
        status, ack = self.request("POST", "/ingest", {"comments": rows})
        assert status == 200, ack
        return ack["accepted"]

    def kill9(self) -> None:
        os.kill(self.proc.pid, signal.SIGKILL)
        self.proc.wait(timeout=30)

    def shutdown(self) -> None:
        if self.proc.poll() is None:
            self.proc.terminate()
            self.proc.wait(timeout=30)


def has_checkpoint(checkpoint_dir: Path) -> bool:
    return checkpoint_dir.is_dir() and any(
        p.name.startswith("ckpt-") and not p.name.endswith(".tmp")
        for p in checkpoint_dir.iterdir()
    )


def test_kill9_restart_replay_is_identical(
    model_dir, feed, feed_item_ids, tmp_path
):
    checkpoint_dir = tmp_path / "ckpts"
    first = ServerProcess(model_dir, checkpoint_dir)
    acked = 0
    try:
        # Feed until at least one checkpoint landed and well over half
        # the stream is in -- then yank the power cord.
        kill_floor = int(len(feed) * 0.6)
        for start in range(0, len(feed), CHUNK):
            acked += first.ingest(feed[start : start + CHUNK])
            if acked >= kill_floor and has_checkpoint(checkpoint_dir):
                break
        assert acked < len(feed), "feed exhausted before the kill point"
        assert has_checkpoint(checkpoint_dir), (
            "no checkpoint written before the kill point"
        )
        first.kill9()
    finally:
        first.shutdown()

    second = ServerProcess(model_dir, checkpoint_dir)
    try:
        status, health = second.request("GET", "/healthz")
        assert status == 200
        assert health["restored_from"] is not None

        # The checkpoint is at most CHECKPOINT_EVERY records behind the
        # acknowledged stream; its position tells us where to replay from.
        status, stats = second.request("GET", "/stats")
        assert status == 200
        position = stats["records_observed"]
        assert 0 < position <= acked
        assert acked - position <= CHECKPOINT_EVERY + CHUNK

        for start in range(position, len(feed), CHUNK):
            second.ingest(feed[start : start + CHUNK])

        status, scored = second.request(
            "POST", "/score", {"item_ids": feed_item_ids}
        )
        assert status == 200
        status, alerts = second.request("GET", "/alerts")
        assert status == 200
    finally:
        second.shutdown()

    # Uninterrupted reference run over the same feed, same model files.
    reference = StreamingDetector(load_cats(model_dir), rescore_growth=1.0)
    reference.observe_many(feed)
    expected = reference.force_rescore_many(feed_item_ids)

    assert {
        int(item_id): probability
        for item_id, probability in scored["probabilities"].items()
    } == expected
    assert alerts["alerts"] == [
        dataclasses.asdict(a) for a in reference.alerts
    ]
