"""Packed-ensemble inference engine: bit-identity with the per-tree
reference paths, chunked/parallel scoring determinism, and the
fit-time leaf-gather margin update."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import CATSConfig, DetectorConfig
from repro.core.detector import Detector
from repro.ml import (
    AdaBoostClassifier,
    DecisionTreeClassifier,
    GradientBoostingClassifier,
)
from repro.ml.inference import PackedEnsemble, _BLOCK_ROWS


def make_data(seed: int, n: int, n_features: int):
    """Labeled data with heavy ties (rounded values) so trees hit the
    duplicate-threshold edge cases."""
    rng = np.random.default_rng(seed)
    X = np.round(rng.normal(size=(n, n_features)) * 4) / 2
    w = rng.normal(size=n_features)
    y = (X @ w + 0.3 * rng.normal(size=n) > 0).astype(np.int64)
    if y.min() == y.max():  # degenerate draw: force both classes
        y[0] = 1 - y[0]
    return X, y


class TestGBDTIdentity:
    @settings(deadline=None, max_examples=25, derandomize=True)
    @given(
        seed=st.integers(0, 50),
        n_estimators=st.integers(1, 8),
        max_depth=st.integers(1, 4),
        colsample=st.sampled_from([0.4, 1.0]),
        tree_method=st.sampled_from(["hist", "exact"]),
        layout=st.sampled_from(["heap", "pointer"]),
    )
    def test_packed_margins_match_reference(
        self, seed, n_estimators, max_depth, colsample, tree_method, layout
    ):
        X, y = make_data(seed, 120, 5)
        model = GradientBoostingClassifier(
            n_estimators=n_estimators,
            max_depth=max_depth,
            colsample=colsample,
            tree_method=tree_method,
            seed=seed,
        ).fit(X, y)
        X_test, _ = make_data(seed + 1000, 300, 5)
        reference = model.decision_function_reference(X_test)
        packed = PackedEnsemble.from_gbdt(model, layout=layout)
        assert np.array_equal(packed.margins(X_test), reference)
        # The default decision_function is the packed path.
        assert np.array_equal(model.decision_function(X_test), reference)

    def test_single_node_trees(self):
        """Constant features leave every tree a bare root leaf."""
        X = np.zeros((30, 3))
        y = np.array([0, 1] * 15)
        model = GradientBoostingClassifier(n_estimators=4, seed=0).fit(X, y)
        assert all(len(t.feature) == 1 for t in model.trees_)
        X_test = np.zeros((7, 3))
        assert np.array_equal(
            model.decision_function(X_test),
            model.decision_function_reference(X_test),
        )

    def test_float32_gather_opt_in(self):
        """float32 value gathers are exact when X round-trips through
        float32."""
        X, y = make_data(3, 200, 5)
        model = GradientBoostingClassifier(n_estimators=10, seed=3).fit(X, y)
        rng = np.random.default_rng(4)
        X_test = rng.normal(size=(500, 5)).astype(np.float32)
        X_test = X_test.astype(np.float64)
        packed = model._packed_ensemble()
        assert np.array_equal(
            packed.margins(X_test, x_dtype=np.float32),
            model.decision_function_reference(X_test),
        )

    def test_refit_invalidates_packed_cache(self):
        X, y = make_data(5, 150, 4)
        model = GradientBoostingClassifier(n_estimators=5, seed=5).fit(X, y)
        first = model.decision_function(X)
        X2, y2 = make_data(6, 150, 4)
        model.fit(X2, y2)
        assert np.array_equal(
            model.decision_function(X),
            model.decision_function_reference(X),
        )
        assert not np.array_equal(model.decision_function(X), first)


class TestChunkedScoring:
    @settings(deadline=None, max_examples=15, derandomize=True)
    @given(
        seed=st.integers(0, 20),
        chunk_size=st.sampled_from([1, 7, 64, 299, 300, 10_000]),
    )
    def test_chunked_identical_to_unchunked(self, seed, chunk_size):
        X, y = make_data(seed, 150, 5)
        model = GradientBoostingClassifier(n_estimators=6, seed=seed).fit(
            X, y
        )
        X_test, _ = make_data(seed + 99, 300, 5)
        unchunked = model.decision_function(X_test)
        assert np.array_equal(
            model.decision_function(X_test, chunk_size=chunk_size), unchunked
        )

    @pytest.mark.parametrize("n_workers", [2, 4])
    def test_any_worker_count_identical(self, n_workers):
        X, y = make_data(7, 200, 5)
        model = GradientBoostingClassifier(n_estimators=8, seed=7).fit(X, y)
        X_test, _ = make_data(8, 1000, 5)
        unchunked = model.decision_function(X_test)
        assert np.array_equal(
            model.decision_function(
                X_test, chunk_size=123, n_workers=n_workers
            ),
            unchunked,
        )

    def test_block_boundary_sizes(self):
        """Row counts straddling the internal cache block never change
        the margins."""
        X, y = make_data(9, 150, 5)
        model = GradientBoostingClassifier(n_estimators=6, seed=9).fit(X, y)
        for n in (1, _BLOCK_ROWS - 1, _BLOCK_ROWS, _BLOCK_ROWS + 1):
            X_test, _ = make_data(n + 10_000, n, 5)
            assert np.array_equal(
                model.decision_function(X_test),
                model.decision_function_reference(X_test),
            )

    def test_counters_track_activity(self):
        X, y = make_data(10, 100, 4)
        model = GradientBoostingClassifier(n_estimators=3, seed=10).fit(X, y)
        packed = model._packed_ensemble()
        assert packed.scoring_stats() == {"calls": 0, "rows": 0}
        model.decision_function(X)
        model.decision_function(X[:40])
        assert packed.scoring_stats() == {"calls": 2, "rows": 140}


class TestCARTIdentity:
    @settings(deadline=None, max_examples=20, derandomize=True)
    @given(
        seed=st.integers(0, 40),
        max_depth=st.sampled_from([1, 3, None]),
        layout=st.sampled_from([None, "heap", "pointer"]),
    )
    def test_packed_leaf_values_match_reference(self, seed, max_depth, layout):
        X, y = make_data(seed, 150, 4)
        model = DecisionTreeClassifier(max_depth=max_depth).fit(X, y)
        X_test, _ = make_data(seed + 500, 300, 4)
        if layout == "heap" and max_depth is None and model.depth > 10:
            return  # heap layout is capped; auto-selection covers this
        packed = PackedEnsemble.from_tree(model, layout=layout)
        assert np.array_equal(
            packed.margins(X_test), model._leaf_values(X_test)
        )

    def test_deep_tree_uses_pointer_layout(self):
        """Unbounded-depth CART must not trigger the exponential heap
        padding."""
        rng = np.random.default_rng(0)
        X = rng.normal(size=(2000, 3))
        y = (rng.random(2000) < 0.5).astype(np.int64)  # noise: deep tree
        model = DecisionTreeClassifier(max_depth=None).fit(X, y)
        assert model.depth > 10
        packed = model._packed_ensemble()
        assert packed.layout == "pointer"
        assert packed.n_slots == model.node_count
        X_test = rng.normal(size=(500, 3))
        assert np.array_equal(
            model.predict_proba(X_test)[:, 1], model._leaf_values(X_test)
        )

    def test_single_leaf_tree(self):
        model = DecisionTreeClassifier().fit(
            np.zeros((10, 2)), np.array([0, 1] * 5)
        )
        X_test = np.zeros((4, 2))
        assert np.array_equal(
            model.predict_proba(X_test)[:, 1], model._leaf_values(X_test)
        )


class TestAdaBoostIdentity:
    @settings(deadline=None, max_examples=20, derandomize=True)
    @given(
        seed=st.integers(0, 40),
        n_estimators=st.integers(1, 12),
        max_depth=st.integers(1, 3),
    )
    def test_packed_votes_match_reference(self, seed, n_estimators, max_depth):
        X, y = make_data(seed, 150, 4)
        model = AdaBoostClassifier(
            n_estimators=n_estimators, max_depth=max_depth
        ).fit(X, y)
        X_test, _ = make_data(seed + 300, 300, 4)
        assert np.array_equal(
            model.decision_function(X_test),
            model.decision_function_reference(X_test),
        )


class TestFitLeafGather:
    @settings(deadline=None, max_examples=15, derandomize=True)
    @given(
        seed=st.integers(0, 30),
        tree_method=st.sampled_from(["hist", "hist-pernode", "exact"]),
        subsample=st.sampled_from([1.0, 0.6]),
    )
    def test_gather_update_identical_to_retraversal(
        self, seed, tree_method, subsample
    ):
        """The builder's recorded leaf assignment must reproduce the
        margin the re-traversal produced, so the fitted models match
        tree for tree -- including subsampled rounds, where the gather
        covers the sampled rows and only left-out rows re-traverse."""
        X, y = make_data(seed, 150, 5)
        kwargs = dict(
            n_estimators=6,
            max_depth=3,
            tree_method=tree_method,
            subsample=subsample,
            seed=seed,
        )
        gathered = GradientBoostingClassifier(**kwargs)
        gathered.fit(X, y)
        retraversed = GradientBoostingClassifier(**kwargs)
        retraversed._margin_via_gather = False
        retraversed.fit(X, y)
        assert gathered.base_margin_ == retraversed.base_margin_
        for tree_a, tree_b in zip(gathered.trees_, retraversed.trees_):
            assert np.array_equal(tree_a.feature, tree_b.feature)
            assert np.array_equal(tree_a.threshold, tree_b.threshold)
            assert np.array_equal(tree_a.leaf_weight, tree_b.leaf_weight)
        X_test, _ = make_data(seed + 77, 200, 5)
        assert np.array_equal(
            gathered.decision_function(X_test),
            retraversed.decision_function(X_test),
        )

    def test_subsample_gathers_sampled_rows(self):
        """Subsampled fits gather leaf weights for the sampled rows and
        re-traverse only the complement, and still score correctly."""
        X, y = make_data(11, 300, 5)
        model = GradientBoostingClassifier(
            n_estimators=5, subsample=0.6, seed=11
        ).fit(X, y)
        assert np.array_equal(
            model.decision_function(X),
            model.decision_function_reference(X),
        )


class TestDetectorChunking:
    @pytest.fixture(scope="class")
    def detector(self):
        X, y = make_data(21, 400, 11)
        config = CATSConfig()
        det = Detector(config.detector, config.rules)
        det.fit(X, y)
        return det

    def test_chunked_predict_proba_identical(self, detector):
        X, _ = make_data(22, 500, 11)
        base = detector.predict_proba(X)
        for chunk_size in (1, 77, 499, 500, 9999):
            assert np.array_equal(
                detector.predict_proba(X, chunk_size=chunk_size), base
            )
        for n_workers in (2, 4):
            assert np.array_equal(
                detector.predict_proba(
                    X, chunk_size=64, n_workers=n_workers
                ),
                base,
            )

    def test_packed_scoring_stats_counts(self):
        X, y = make_data(23, 300, 11)
        config = CATSConfig()
        det = Detector(config.detector, config.rules)
        det.fit(X, y)
        assert det.packed_scoring_stats() == {
            "packed_predict_calls": 0,
            "packed_rows_scored": 0,
        }
        det.predict_proba(X)
        stats = det.packed_scoring_stats()
        assert stats["packed_predict_calls"] == 1
        assert stats["packed_rows_scored"] == 300

    def test_unfitted_detector_reports_zero_stats(self):
        det = Detector(DetectorConfig())
        assert det.packed_scoring_stats() == {
            "packed_predict_calls": 0,
            "packed_rows_scored": 0,
        }
