"""Tests for repro.ml.adaboost."""

import numpy as np
import pytest

from repro.ml.adaboost import AdaBoostClassifier


@pytest.fixture(scope="module")
def stripes_data():
    """Three vertical stripes: one stump is insufficient, boosting works."""
    rng = np.random.default_rng(11)
    X = rng.uniform(0, 3, size=(400, 1))
    y = ((X[:, 0] % 2) < 1).astype(int)
    return X, y


class TestValidation:
    def test_bad_n_estimators(self):
        with pytest.raises(ValueError):
            AdaBoostClassifier(n_estimators=0)

    def test_bad_learning_rate(self):
        with pytest.raises(ValueError):
            AdaBoostClassifier(learning_rate=0.0)


class TestTraining:
    def test_boosting_beats_single_stump(self, stripes_data):
        X, y = stripes_data
        stump = AdaBoostClassifier(n_estimators=1).fit(X, y)
        boosted = AdaBoostClassifier(n_estimators=40).fit(X, y)
        assert boosted.score(X, y) > stump.score(X, y)

    def test_perfect_weak_learner_short_circuits(self):
        X = np.array([[0.0], [1.0], [2.0], [3.0]])
        y = np.array([0, 0, 1, 1])
        model = AdaBoostClassifier(n_estimators=50).fit(X, y)
        assert model.n_rounds_ == 1
        assert model.score(X, y) == 1.0

    def test_rounds_bounded_by_n_estimators(self, stripes_data):
        X, y = stripes_data
        model = AdaBoostClassifier(n_estimators=7).fit(X, y)
        assert model.n_rounds_ <= 7

    def test_stage_weights_positive(self, stripes_data):
        X, y = stripes_data
        model = AdaBoostClassifier(n_estimators=20).fit(X, y)
        assert all(alpha > 0 for alpha in model.estimator_weights_)

    def test_deeper_weak_learners(self, stripes_data):
        X, y = stripes_data
        model = AdaBoostClassifier(n_estimators=15, max_depth=3).fit(X, y)
        assert model.score(X, y) > 0.9

    def test_pure_noise_converges_gracefully(self):
        rng = np.random.default_rng(12)
        X = rng.normal(size=(100, 2))
        y = rng.integers(0, 2, size=100)
        model = AdaBoostClassifier(n_estimators=30).fit(X, y)
        # Must stay usable even when weak learners stop helping.
        assert model.predict(X).shape == (100,)


class TestDecisionFunction:
    def test_margin_in_unit_interval(self, stripes_data):
        X, y = stripes_data
        model = AdaBoostClassifier(n_estimators=20).fit(X, y)
        margin = model.decision_function(X)
        assert np.all(margin >= -1.0 - 1e-9)
        assert np.all(margin <= 1.0 + 1e-9)

    def test_sign_matches_predict(self, stripes_data):
        X, y = stripes_data
        model = AdaBoostClassifier(n_estimators=20).fit(X, y)
        np.testing.assert_array_equal(
            model.predict(X), (model.decision_function(X) >= 0).astype(int)
        )
