"""Tests for repro.ml.naive_bayes."""

import numpy as np
import pytest

from repro.ml.naive_bayes import GaussianNB, MultinomialNB


class TestGaussianNB:
    def test_bad_smoothing(self):
        with pytest.raises(ValueError):
            GaussianNB(var_smoothing=0.0)

    def test_separated_gaussians(self):
        rng = np.random.default_rng(15)
        X = np.vstack(
            [rng.normal(-2, 1, (150, 2)), rng.normal(2, 1, (150, 2))]
        )
        y = np.array([0] * 150 + [1] * 150)
        model = GaussianNB().fit(X, y)
        assert model.score(X, y) > 0.95

    def test_priors_match_frequencies(self):
        rng = np.random.default_rng(16)
        X = rng.normal(size=(100, 2))
        y = np.array([1] * 30 + [0] * 70)
        model = GaussianNB().fit(X, y)
        assert model.class_prior_[1] == pytest.approx(0.3)

    def test_prior_shifts_prediction(self):
        rng = np.random.default_rng(17)
        # Identical likelihoods, skewed prior: predicts the prior class.
        X = rng.normal(size=(200, 1))
        y = np.array([0] * 180 + [1] * 20)
        model = GaussianNB().fit(X, rng.permutation(y))
        pred = model.predict(rng.normal(size=(50, 1)))
        assert (pred == 0).mean() > 0.8

    def test_single_class_training_rejected(self):
        X = np.zeros((10, 2))
        y = np.ones(10, dtype=int)
        with pytest.raises(ValueError):
            GaussianNB().fit(X, y)

    def test_constant_feature_stable(self):
        X = np.column_stack([np.zeros(50), np.arange(50.0)])
        y = (np.arange(50) > 25).astype(int)
        model = GaussianNB().fit(X, y)
        proba = model.predict_proba(X)
        assert np.all(np.isfinite(proba))


class TestMultinomialNB:
    @pytest.fixture()
    def toy_corpus(self):
        # vocab: 0="good", 1="bad", 2="item"
        docs = [[0, 0, 2], [0, 2], [1, 2], [1, 1, 2], [0], [1]]
        labels = [1, 1, 0, 0, 1, 0]
        return docs, labels

    def test_bad_alpha(self):
        with pytest.raises(ValueError):
            MultinomialNB(alpha=0.0)

    def test_learns_token_polarity(self, toy_corpus):
        docs, labels = toy_corpus
        model = MultinomialNB().fit(docs, labels, vocab_size=3)
        assert model.positive_probability([0, 0]) > 0.5
        assert model.positive_probability([1, 1]) < 0.5

    def test_neutral_token_near_prior(self, toy_corpus):
        docs, labels = toy_corpus
        model = MultinomialNB().fit(docs, labels, vocab_size=3)
        # "item" occurs equally in both classes.
        assert model.positive_probability([2]) == pytest.approx(0.5, abs=0.1)

    def test_empty_document_returns_prior(self, toy_corpus):
        docs, labels = toy_corpus
        model = MultinomialNB().fit(docs, labels, vocab_size=3)
        prior_pos = np.exp(model.class_log_prior_[1])
        assert model.positive_probability([]) == pytest.approx(prior_pos)

    def test_proba_normalized(self, toy_corpus):
        docs, labels = toy_corpus
        model = MultinomialNB().fit(docs, labels, vocab_size=3)
        proba = model.predict_proba([0, 1, 2])
        assert proba.sum() == pytest.approx(1.0)

    def test_out_of_vocab_token_at_predict_ignored(self, toy_corpus):
        docs, labels = toy_corpus
        model = MultinomialNB().fit(docs, labels, vocab_size=3)
        assert model.positive_probability([0, 99]) == pytest.approx(
            model.positive_probability([0])
        )

    def test_out_of_vocab_token_at_fit_rejected(self):
        with pytest.raises(ValueError):
            MultinomialNB().fit([[5]], [1], vocab_size=3)

    def test_single_class_rejected(self):
        with pytest.raises(ValueError):
            MultinomialNB().fit([[0], [1]], [1, 1], vocab_size=2)

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            MultinomialNB().fit([[0]], [1, 0], vocab_size=2)

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            MultinomialNB().predict_proba([0])

    def test_longer_evidence_more_extreme(self, toy_corpus):
        docs, labels = toy_corpus
        model = MultinomialNB().fit(docs, labels, vocab_size=3)
        assert model.positive_probability([0, 0, 0]) > (
            model.positive_probability([0])
        )
