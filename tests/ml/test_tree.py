"""Tests for repro.ml.tree (CART)."""

import numpy as np
import pytest

from repro.ml.tree import DecisionTreeClassifier


@pytest.fixture()
def xor_data():
    """XOR: needs depth >= 2, impossible for a stump."""
    X = np.array(
        [[0, 0], [0, 1], [1, 0], [1, 1]] * 25, dtype=float
    )
    y = (X[:, 0].astype(int) ^ X[:, 1].astype(int)).astype(int)
    return X, y


class TestHyperparameterValidation:
    def test_bad_max_depth(self):
        with pytest.raises(ValueError):
            DecisionTreeClassifier(max_depth=0)

    def test_bad_min_samples_split(self):
        with pytest.raises(ValueError):
            DecisionTreeClassifier(min_samples_split=1)

    def test_bad_min_samples_leaf(self):
        with pytest.raises(ValueError):
            DecisionTreeClassifier(min_samples_leaf=0)


class TestGrowth:
    def test_pure_node_stops(self):
        X = np.array([[0.0], [1.0], [2.0]])
        y = np.array([1, 1, 1])
        tree = DecisionTreeClassifier().fit(X, y)
        assert tree.node_count == 1
        assert tree.depth == 0

    def test_single_split_separates(self):
        X = np.array([[0.0], [1.0], [2.0], [3.0]])
        y = np.array([0, 0, 1, 1])
        tree = DecisionTreeClassifier().fit(X, y)
        assert tree.node_count == 3
        assert tree.score(X, y) == 1.0
        # Threshold is midway between 1 and 2.
        assert tree.threshold_[0] == pytest.approx(1.5)

    def test_solves_xor_with_depth_two(self, xor_data):
        X, y = xor_data
        tree = DecisionTreeClassifier(max_depth=2).fit(X, y)
        assert tree.score(X, y) == 1.0

    def test_stump_cannot_solve_xor(self, xor_data):
        X, y = xor_data
        stump = DecisionTreeClassifier(max_depth=1).fit(X, y)
        assert stump.score(X, y) <= 0.75

    def test_max_depth_respected(self, xor_data):
        X, y = xor_data
        tree = DecisionTreeClassifier(max_depth=1).fit(X, y)
        assert tree.depth <= 1

    def test_min_samples_leaf_respected(self):
        rng = np.random.default_rng(0)
        X = rng.normal(size=(100, 3))
        y = (X[:, 0] > 0).astype(int)
        tree = DecisionTreeClassifier(min_samples_leaf=20).fit(X, y)
        leaf_mask = tree.feature_ == -1
        assert tree.n_node_samples_[leaf_mask].min() >= 20

    def test_min_impurity_decrease_blocks_weak_split(self):
        rng = np.random.default_rng(1)
        X = rng.normal(size=(200, 1))
        y = rng.integers(0, 2, size=200)  # pure noise
        tree = DecisionTreeClassifier(min_impurity_decrease=0.05).fit(X, y)
        assert tree.node_count == 1


class TestSampleWeights:
    def test_weights_shift_majority(self):
        X = np.array([[0.0], [0.0], [0.0]])
        y = np.array([0, 0, 1])
        # Weight the single positive example heavily.
        w = np.array([1.0, 1.0, 10.0])
        tree = DecisionTreeClassifier().fit(X, y, sample_weight=w)
        assert tree.predict(np.array([[0.0]]))[0] == 1

    def test_zero_weight_ignored(self):
        X = np.array([[0.0], [1.0], [2.0], [3.0]])
        y = np.array([0, 0, 1, 0])
        w = np.array([1.0, 1.0, 0.0, 1.0])
        tree = DecisionTreeClassifier().fit(X, y, sample_weight=w)
        assert tree.predict(np.array([[2.0]]))[0] == 0

    def test_negative_weight_rejected(self):
        X = np.array([[0.0], [1.0]])
        y = np.array([0, 1])
        with pytest.raises(ValueError):
            DecisionTreeClassifier().fit(
                X, y, sample_weight=np.array([1.0, -1.0])
            )

    def test_wrong_weight_shape_rejected(self):
        X = np.array([[0.0], [1.0]])
        y = np.array([0, 1])
        with pytest.raises(ValueError):
            DecisionTreeClassifier().fit(X, y, sample_weight=np.ones(3))


class TestIntrospection:
    def test_split_counts_sum_to_internal_nodes(self, xor_data):
        X, y = xor_data
        tree = DecisionTreeClassifier(max_depth=3).fit(X, y)
        internal = int(np.sum(tree.feature_ != -1))
        assert tree.split_counts().sum() == internal

    def test_split_counts_only_used_features(self):
        X = np.column_stack(
            [np.arange(40.0), np.zeros(40)]  # second feature constant
        )
        y = (X[:, 0] > 20).astype(int)
        tree = DecisionTreeClassifier().fit(X, y)
        counts = tree.split_counts()
        assert counts[1] == 0
        assert counts[0] >= 1

    def test_proba_reflects_leaf_purity(self):
        X = np.array([[0.0], [0.0], [0.0], [1.0]])
        y = np.array([1, 1, 0, 0])
        tree = DecisionTreeClassifier(max_depth=1).fit(X, y)
        proba = tree.predict_proba(np.array([[0.0]]))
        assert proba[0, 1] == pytest.approx(2 / 3)
