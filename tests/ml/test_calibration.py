"""Tests for repro.ml.calibration."""

import numpy as np
import pytest

from repro.ml.calibration import (
    brier_score,
    expected_calibration_error,
    reliability_curve,
)


@pytest.fixture()
def calibrated_scores():
    """Perfectly calibrated synthetic scores: P(y=1 | p) = p."""
    rng = np.random.default_rng(60)
    p = rng.random(20_000)
    y = (rng.random(20_000) < p).astype(int)
    return p, y


class TestValidation:
    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            brier_score([0.5], [1, 0])

    def test_empty(self):
        with pytest.raises(ValueError):
            brier_score([], [])

    def test_out_of_range_proba(self):
        with pytest.raises(ValueError):
            brier_score([1.5], [1])

    def test_bad_bins(self):
        with pytest.raises(ValueError):
            reliability_curve([0.5], [1], n_bins=0)


class TestReliabilityCurve:
    def test_bins_cover_unit_interval(self, calibrated_scores):
        p, y = calibrated_scores
        curve = reliability_curve(p, y, n_bins=10)
        assert curve[0]["bin_lo"] == 0.0
        assert curve[-1]["bin_hi"] == 1.0

    def test_counts_sum_to_n(self, calibrated_scores):
        p, y = calibrated_scores
        curve = reliability_curve(p, y, n_bins=10)
        assert sum(row["count"] for row in curve) == len(p)

    def test_calibrated_scores_on_diagonal(self, calibrated_scores):
        p, y = calibrated_scores
        for row in reliability_curve(p, y, n_bins=10):
            assert row["observed_rate"] == pytest.approx(
                row["mean_predicted"], abs=0.05
            )

    def test_empty_bins_omitted(self):
        curve = reliability_curve([0.05, 0.06], [0, 1], n_bins=10)
        assert len(curve) == 1

    def test_extreme_probabilities_binned(self):
        curve = reliability_curve([0.0, 1.0], [0, 1], n_bins=5)
        assert curve[0]["bin_lo"] == 0.0
        assert curve[-1]["bin_hi"] == 1.0


class TestECE:
    def test_calibrated_is_near_zero(self, calibrated_scores):
        p, y = calibrated_scores
        assert expected_calibration_error(p, y) < 0.02

    def test_overconfident_is_large(self):
        # Predicts 0.99 for everything; actual rate 0.5.
        p = np.full(1000, 0.99)
        y = np.array([0, 1] * 500)
        assert expected_calibration_error(p, y) > 0.4

    def test_bounds(self, calibrated_scores):
        p, y = calibrated_scores
        assert 0.0 <= expected_calibration_error(p, y) <= 1.0


class TestBrier:
    def test_perfect_predictions(self):
        assert brier_score([1.0, 0.0], [1, 0]) == 0.0

    def test_worst_predictions(self):
        assert brier_score([0.0, 1.0], [1, 0]) == 1.0

    def test_uninformative_half(self):
        assert brier_score([0.5, 0.5], [1, 0]) == pytest.approx(0.25)


class TestDetectorCalibration:
    def test_gbdt_detector_is_overconfident(self, trained_cats, d0_small):
        """The shipped GBDT's probabilities are overconfident -- the
        measured justification for the calibrated reporting threshold."""
        proba = trained_cats.detector.predict_proba(
            trained_cats.extract_features(d0_small.items)
        )
        # Probability mass piles near 0 and 1.
        extreme = np.mean((proba < 0.1) | (proba > 0.9))
        assert extreme > 0.5
