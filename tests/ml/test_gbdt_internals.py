"""White-box tests for the GBDT tree builder and word2vec pair logic."""

import numpy as np
import pytest

from repro.ml.gbdt import _BoostTree, _BoostTreeBuilder


def make_builder(**kwargs):
    defaults = dict(
        max_depth=3,
        min_child_weight=1e-3,
        reg_lambda=1.0,
        gamma=0.0,
        colsample=1.0,
        rng=np.random.default_rng(0),
    )
    defaults.update(kwargs)
    return _BoostTreeBuilder(**defaults)


class TestBoostTreePredict:
    def test_hand_built_stump(self):
        # x <= 0.5 -> -1.0 else +2.0
        tree = _BoostTree(
            children_left=np.array([1, -1, -1]),
            children_right=np.array([2, -1, -1]),
            feature=np.array([0, -1, -1]),
            threshold=np.array([0.5, 0.0, 0.0]),
            leaf_weight=np.array([0.0, -1.0, 2.0]),
            split_gain=np.array([1.0, 0.0, 0.0]),
        )
        X = np.array([[0.0], [1.0], [0.5], [0.6]])
        np.testing.assert_allclose(
            tree.predict(X), [-1.0, 2.0, -1.0, 2.0]
        )

    def test_single_leaf_tree(self):
        tree = _BoostTree(
            children_left=np.array([-1]),
            children_right=np.array([-1]),
            feature=np.array([-1]),
            threshold=np.array([0.0]),
            leaf_weight=np.array([0.7]),
            split_gain=np.array([0.0]),
        )
        np.testing.assert_allclose(tree.predict(np.zeros((3, 2))), 0.7)


class TestBuilder:
    def test_leaf_weight_formula(self):
        """w* = -G / (H + lambda) at a forced leaf."""
        builder = make_builder(max_depth=0, reg_lambda=2.0)
        X = np.zeros((4, 1))
        grad = np.array([1.0, 1.0, -1.0, 3.0])  # G = 4
        hess = np.array([0.5, 0.5, 0.5, 0.5])  # H = 2
        tree, _ = builder.build(X, grad, hess, np.arange(4))
        assert tree.leaf_weight[0] == pytest.approx(-4.0 / (2.0 + 2.0))

    def test_split_reduces_loss(self):
        """A clean split separates opposing gradients."""
        builder = make_builder(max_depth=1)
        X = np.array([[0.0], [0.1], [0.9], [1.0]])
        grad = np.array([1.0, 1.0, -1.0, -1.0])
        hess = np.full(4, 0.25)
        tree, _ = builder.build(X, grad, hess, np.arange(4))
        assert (tree.feature != -1).sum() == 1
        internal = int(np.flatnonzero(tree.feature != -1)[0])
        assert 0.1 < tree.threshold[internal] < 0.9
        leaves = tree.leaf_weight[tree.feature == -1]
        # Left leaf (positive gradients) gets a negative weight and
        # vice versa.
        assert leaves.min() < 0 < leaves.max()

    def test_gamma_blocks_marginal_split(self):
        X = np.array([[0.0], [1.0]])
        grad = np.array([0.01, -0.01])
        hess = np.full(2, 0.25)
        greedy, _ = make_builder(max_depth=1, gamma=0.0).build(
            X, grad, hess, np.arange(2)
        )
        blocked, _ = make_builder(max_depth=1, gamma=10.0).build(
            X, grad, hess, np.arange(2)
        )
        assert (greedy.feature != -1).sum() >= (blocked.feature != -1).sum()
        assert (blocked.feature != -1).sum() == 0

    def test_min_child_weight_blocks_thin_children(self):
        X = np.array([[0.0], [1.0]])
        grad = np.array([1.0, -1.0])
        hess = np.full(2, 0.1)  # each child H = 0.1 < 0.5
        tree, _ = make_builder(max_depth=1, min_child_weight=0.5).build(
            X, grad, hess, np.arange(2)
        )
        assert (tree.feature != -1).sum() == 0

    def test_colsample_restricts_features(self):
        rng = np.random.default_rng(3)
        X = rng.normal(size=(200, 10))
        grad = np.where(X[:, 0] > 0, -1.0, 1.0)
        hess = np.full(200, 0.25)
        builder = make_builder(
            max_depth=2, colsample=0.2, rng=np.random.default_rng(5)
        )
        tree, _ = builder.build(X, grad, hess, np.arange(200))
        used = set(tree.feature[tree.feature != -1].tolist())
        assert len(used) <= 2  # 20% of 10 features


class TestWord2VecPairs:
    def test_window_bound_respected(self):
        from repro.semantics.word2vec import Word2Vec

        model = Word2Vec(
            dim=4, window=2, epochs=1, min_count=1, subsample=0.0, seed=0
        )
        sentence = ["a", "b", "c", "d", "e", "f", "g", "h"]
        model.fit([sentence] * 5)
        encoded = [model.vocabulary.encode(sentence)]
        rng = np.random.default_rng(0)
        centers, contexts = model._epoch_pairs(
            encoded, np.ones(len(model.vocabulary)), rng
        )
        # Every (center, context) pair must be within `window` positions.
        position = {model.vocabulary.word_id(w): i
                    for i, w in enumerate(sentence)}
        for c, ctx in zip(centers, contexts):
            assert 1 <= abs(position[int(c)] - position[int(ctx)]) <= 2

    def test_no_self_pairs(self):
        from repro.semantics.word2vec import Word2Vec

        model = Word2Vec(
            dim=4, window=3, epochs=1, min_count=1, subsample=0.0, seed=0
        )
        sentence = ["a", "b", "c", "d"]
        model.fit([sentence] * 5)
        encoded = [model.vocabulary.encode(sentence)]
        rng = np.random.default_rng(1)
        centers, contexts = model._epoch_pairs(
            encoded, np.ones(len(model.vocabulary)), rng
        )
        # Distinct words: a center never pairs with its own position
        # (same id can appear for repeated words, but not here).
        assert np.all(centers != contexts)
