"""Tests for repro.ml.metrics."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.ml.metrics import (
    accuracy_score,
    classification_report,
    confusion_matrix,
    f1_score,
    precision_recall_f1,
    precision_score,
    recall_score,
    roc_auc_score,
)

label_lists = st.lists(st.integers(0, 1), min_size=1, max_size=50)


class TestConfusionMatrix:
    def test_layout(self):
        cm = confusion_matrix([0, 0, 1, 1], [0, 1, 0, 1])
        assert cm.tolist() == [[1, 1], [1, 1]]

    def test_all_correct(self):
        cm = confusion_matrix([0, 1], [0, 1])
        assert cm[0, 0] == 1 and cm[1, 1] == 1
        assert cm[0, 1] == 0 and cm[1, 0] == 0

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            confusion_matrix([0, 1], [0])

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            confusion_matrix([], [])

    @given(label_lists)
    def test_sums_to_n(self, labels):
        preds = labels[::-1]
        cm = confusion_matrix(labels, preds)
        assert cm.sum() == len(labels)


class TestPrecisionRecall:
    def test_perfect(self):
        assert precision_score([1, 0], [1, 0]) == 1.0
        assert recall_score([1, 0], [1, 0]) == 1.0

    def test_precision_definition(self):
        # 1 TP, 1 FP.
        assert precision_score([1, 0, 0], [1, 1, 0]) == 0.5

    def test_recall_definition(self):
        # 1 TP, 1 FN.
        assert recall_score([1, 1, 0], [1, 0, 0]) == 0.5

    def test_no_predicted_positives_gives_zero_precision(self):
        assert precision_score([1, 0], [0, 0]) == 0.0

    def test_scores_are_python_floats(self):
        # Regression: precision/recall used to leak np.float64 while
        # accuracy/f1 returned float; all four must agree on the type
        # (np.float64 breaks strict JSON serializers, among others).
        y_true, y_pred = [1, 0, 1, 0], [1, 1, 0, 0]
        assert type(precision_score(y_true, y_pred)) is float
        assert type(recall_score(y_true, y_pred)) is float
        assert type(accuracy_score(y_true, y_pred)) is float
        assert type(f1_score(y_true, y_pred)) is float

    @given(label_lists)
    def test_types_stable_across_inputs(self, labels):
        preds = labels[::-1]
        assert type(precision_score(labels, preds)) is float
        assert type(recall_score(labels, preds)) is float

    def test_no_actual_positives_gives_zero_recall(self):
        assert recall_score([0, 0], [1, 0]) == 0.0

    @given(label_lists)
    def test_bounds(self, labels):
        preds = [1 - v for v in labels]
        assert 0.0 <= precision_score(labels, preds) <= 1.0
        assert 0.0 <= recall_score(labels, preds) <= 1.0


class TestF1:
    def test_harmonic_mean(self):
        y_true = [1, 1, 0, 0]
        y_pred = [1, 0, 1, 0]
        p = precision_score(y_true, y_pred)
        r = recall_score(y_true, y_pred)
        assert f1_score(y_true, y_pred) == pytest.approx(
            2 * p * r / (p + r)
        )

    def test_zero_when_nothing_found(self):
        assert f1_score([1, 1], [0, 0]) == 0.0

    def test_combined_helper_consistent(self):
        y_true = [1, 1, 0, 0, 1]
        y_pred = [1, 0, 1, 0, 1]
        p, r, f = precision_recall_f1(y_true, y_pred)
        assert p == precision_score(y_true, y_pred)
        assert r == recall_score(y_true, y_pred)
        assert f == pytest.approx(f1_score(y_true, y_pred))


class TestAccuracy:
    def test_basic(self):
        assert accuracy_score([1, 0, 1], [1, 1, 1]) == pytest.approx(2 / 3)

    @given(label_lists)
    def test_self_prediction_is_one(self, labels):
        assert accuracy_score(labels, labels) == 1.0


class TestRocAuc:
    def test_perfect_separation(self):
        assert roc_auc_score([0, 0, 1, 1], [0.1, 0.2, 0.8, 0.9]) == 1.0

    def test_inverted_scores(self):
        assert roc_auc_score([0, 0, 1, 1], [0.9, 0.8, 0.2, 0.1]) == 0.0

    def test_random_scores_near_half(self):
        rng = np.random.default_rng(0)
        y = rng.integers(0, 2, size=4000)
        s = rng.random(4000)
        assert abs(roc_auc_score(y, s) - 0.5) < 0.05

    def test_ties_average(self):
        # All scores equal -> AUC exactly 0.5.
        assert roc_auc_score([0, 1, 0, 1], [0.5, 0.5, 0.5, 0.5]) == 0.5

    def test_single_class_raises(self):
        with pytest.raises(ValueError):
            roc_auc_score([1, 1], [0.3, 0.4])

    def test_monotone_transform_invariance(self):
        y = [0, 1, 0, 1, 1, 0]
        s = np.array([0.1, 0.9, 0.3, 0.7, 0.6, 0.2])
        assert roc_auc_score(y, s) == roc_auc_score(y, s * 10 + 3)


class TestReport:
    def test_contains_all_metrics(self):
        text = classification_report([1, 0, 1], [1, 0, 0])
        for key in ("accuracy", "precision", "recall", "f1-score"):
            assert key in text


class TestAveragePrecision:
    def test_perfect_ranking_is_one(self):
        from repro.ml.metrics import average_precision_score

        assert average_precision_score(
            [0, 0, 1, 1], [0.1, 0.2, 0.8, 0.9]
        ) == 1.0

    def test_worst_ranking(self):
        from repro.ml.metrics import average_precision_score

        # Positives ranked last: AP = mean of k/(n_neg+k).
        ap = average_precision_score([1, 1, 0, 0], [0.1, 0.2, 0.8, 0.9])
        expected = 0.5 * (1 / 3 + 2 / 4)
        assert ap == pytest.approx(expected)

    def test_no_positives_raises(self):
        from repro.ml.metrics import average_precision_score

        with pytest.raises(ValueError):
            average_precision_score([0, 0], [0.1, 0.2])

    def test_bounded(self):
        from repro.ml.metrics import average_precision_score

        rng = np.random.default_rng(9)
        y = rng.integers(0, 2, 200)
        if y.sum() == 0:
            y[0] = 1
        ap = average_precision_score(y, rng.random(200))
        assert 0.0 < ap <= 1.0

    def test_random_scores_near_prevalence(self):
        from repro.ml.metrics import average_precision_score

        rng = np.random.default_rng(10)
        y = (rng.random(5000) < 0.2).astype(int)
        ap = average_precision_score(y, rng.random(5000))
        assert abs(ap - 0.2) < 0.05
