"""Tests for repro.ml.neural (MLP)."""

import numpy as np
import pytest

from repro.ml.neural import MLPClassifier


@pytest.fixture(scope="module")
def moons_like():
    """Two interleaving half-circles (nonlinear boundary)."""
    rng = np.random.default_rng(13)
    n = 300
    t = rng.uniform(0, np.pi, size=n)
    upper = np.column_stack([np.cos(t), np.sin(t)])
    lower = np.column_stack([1 - np.cos(t), 0.4 - np.sin(t)])
    X = np.vstack([upper, lower]) + 0.08 * rng.normal(size=(2 * n, 2))
    y = np.array([0] * n + [1] * n)
    return X, y


class TestValidation:
    def test_bad_activation(self):
        with pytest.raises(ValueError):
            MLPClassifier(activation="gelu")

    def test_bad_hidden_width(self):
        with pytest.raises(ValueError):
            MLPClassifier(hidden_layer_sizes=(0,))


class TestTraining:
    def test_learns_nonlinear_boundary(self, moons_like):
        X, y = moons_like
        model = MLPClassifier(
            hidden_layer_sizes=(32, 16), max_epochs=120, seed=0
        ).fit(X, y)
        assert model.score(X, y) > 0.9

    def test_tanh_activation_works(self, moons_like):
        X, y = moons_like
        model = MLPClassifier(
            hidden_layer_sizes=(24,), activation="tanh",
            max_epochs=120, seed=0,
        ).fit(X, y)
        assert model.score(X, y) > 0.85

    def test_loss_curve_decreases(self, moons_like):
        X, y = moons_like
        model = MLPClassifier(max_epochs=40, seed=0).fit(X, y)
        assert model.loss_curve_[-1] < model.loss_curve_[0]

    def test_early_stopping_stops_sooner(self, moons_like):
        X, y = moons_like
        eager = MLPClassifier(
            max_epochs=150, early_stopping=True, patience=3, seed=0
        ).fit(X, y)
        assert len(eager.loss_curve_) < 150

    def test_weight_decay_shrinks_weights(self, moons_like):
        X, y = moons_like
        small = MLPClassifier(alpha=0.0, max_epochs=30, seed=0).fit(X, y)
        large = MLPClassifier(alpha=0.3, max_epochs=30, seed=0).fit(X, y)
        norm = lambda m: sum(float(np.abs(W).sum()) for W in m._weights)
        assert norm(large) < norm(small)

    def test_different_seeds_differ(self, moons_like):
        X, y = moons_like
        a = MLPClassifier(max_epochs=5, seed=0).fit(X, y)
        b = MLPClassifier(max_epochs=5, seed=1).fit(X, y)
        assert not np.allclose(a._weights[0], b._weights[0])


class TestArchitecture:
    def test_layer_shapes(self, moons_like):
        X, y = moons_like
        model = MLPClassifier(
            hidden_layer_sizes=(10, 7), max_epochs=2, seed=0
        ).fit(X, y)
        shapes = [W.shape for W in model._weights]
        assert shapes == [(2, 10), (10, 7), (7, 1)]

    def test_no_hidden_layers_is_logistic_regression(self):
        rng = np.random.default_rng(14)
        X = rng.normal(size=(300, 2))
        y = (X[:, 0] - X[:, 1] > 0).astype(int)
        model = MLPClassifier(
            hidden_layer_sizes=(), max_epochs=80, seed=0
        ).fit(X, y)
        assert model.score(X, y) > 0.9
