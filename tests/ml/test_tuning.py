"""Tests for repro.ml.tuning."""

import numpy as np
import pytest

from repro.ml import DecisionTreeClassifier, GradientBoostingClassifier
from repro.ml.tuning import (
    GridSearchResult,
    ThresholdCalibration,
    calibrate_threshold,
    grid_search,
)


@pytest.fixture(scope="module")
def data():
    rng = np.random.default_rng(40)
    X = rng.normal(size=(240, 4))
    y = (X[:, 0] - X[:, 1] + 0.5 * rng.normal(size=240) > 0).astype(int)
    return X, y


class TestGridSearch:
    def test_empty_grid_rejected(self, data):
        X, y = data
        with pytest.raises(ValueError):
            grid_search(DecisionTreeClassifier, {}, X, y)

    def test_empty_candidates_rejected(self, data):
        X, y = data
        with pytest.raises(ValueError):
            grid_search(DecisionTreeClassifier, {"max_depth": []}, X, y)

    def test_unknown_metric_rejected(self, data):
        X, y = data
        with pytest.raises(ValueError):
            grid_search(
                lambda **kw: DecisionTreeClassifier(**kw),
                {"max_depth": [2]},
                X,
                y,
                metric="auc",
            )

    def test_trials_cover_whole_grid(self, data):
        X, y = data
        result = grid_search(
            lambda **kw: DecisionTreeClassifier(**kw),
            {"max_depth": [2, 4], "min_samples_leaf": [1, 5]},
            X,
            y,
            n_splits=3,
        )
        assert len(result.trials) == 4

    def test_best_is_argmax_of_trials(self, data):
        X, y = data
        result = grid_search(
            lambda **kw: GradientBoostingClassifier(
                n_estimators=10, seed=0, **kw
            ),
            {"max_depth": [1, 3]},
            X,
            y,
            n_splits=3,
        )
        best_from_trials = max(t[1]["f1"] for t in result.trials)
        assert result.best_score == pytest.approx(best_from_trials)

    def test_params_reach_factory(self, data):
        X, y = data
        seen = []

        def factory(**kw):
            seen.append(kw)
            return DecisionTreeClassifier(**kw)

        grid_search(factory, {"max_depth": [2, 3]}, X, y, n_splits=3)
        depths = {kw["max_depth"] for kw in seen}
        assert depths == {2, 3}


class TestCalibrateThreshold:
    @pytest.fixture()
    def scores(self):
        rng = np.random.default_rng(41)
        y = np.array([1] * 200 + [0] * 200)
        proba = np.where(
            y == 1,
            np.clip(rng.normal(0.85, 0.1, 400), 0, 1),
            np.clip(rng.normal(0.25, 0.15, 400), 0, 1),
        )
        return proba, y

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            calibrate_threshold(np.zeros(3), np.zeros(4))

    def test_single_class_rejected(self):
        with pytest.raises(ValueError):
            calibrate_threshold(np.zeros(4), np.ones(4))

    def test_bad_prevalence_rejected(self, scores):
        proba, y = scores
        with pytest.raises(ValueError):
            calibrate_threshold(proba, y, target_prevalence=1.5)

    def test_meets_precision_floor(self, scores):
        proba, y = scores
        result = calibrate_threshold(proba, y, min_precision=0.9)
        assert result.expected_precision >= 0.9

    def test_lower_floor_gives_lower_threshold(self, scores):
        proba, y = scores
        loose = calibrate_threshold(proba, y, min_precision=0.6)
        strict = calibrate_threshold(proba, y, min_precision=0.95)
        assert loose.threshold <= strict.threshold
        assert loose.expected_recall >= strict.expected_recall

    def test_prevalence_shift_raises_threshold(self, scores):
        proba, y = scores
        balanced = calibrate_threshold(proba, y, min_precision=0.8)
        deployed = calibrate_threshold(
            proba, y, min_precision=0.8, target_prevalence=0.01
        )
        # At 1% prevalence the same precision needs a stricter cut.
        assert deployed.threshold >= balanced.threshold

    def test_curve_covers_grid(self, scores):
        proba, y = scores
        result = calibrate_threshold(proba, y, grid=[0.1, 0.5, 0.9])
        assert len(result.curve) == 3

    def test_unreachable_floor_returns_best_effort(self, scores):
        proba, y = scores
        result = calibrate_threshold(
            proba, y, min_precision=1.0, target_prevalence=0.001
        )
        # Falls back to the most precise point instead of failing.
        assert isinstance(result, ThresholdCalibration)
        assert result.expected_precision == max(
            p for __, p, __r in result.curve
        )

    def test_recall_monotone_decreasing_along_curve(self, scores):
        proba, y = scores
        result = calibrate_threshold(proba, y)
        recalls = [r for __, __p, r in result.curve]
        assert all(a >= b - 1e-12 for a, b in zip(recalls, recalls[1:]))
