"""Tests for repro.ml.model_selection."""

import numpy as np
import pytest

from repro.ml.model_selection import (
    KFold,
    StratifiedKFold,
    cross_validate,
    train_test_split,
)
from repro.ml.naive_bayes import GaussianNB


class TestKFold:
    def test_bad_n_splits(self):
        with pytest.raises(ValueError):
            KFold(n_splits=1)

    def test_partitions_all_indices(self):
        splitter = KFold(n_splits=5, seed=0)
        seen = np.concatenate([test for __, test in splitter.split(53)])
        assert sorted(seen.tolist()) == list(range(53))

    def test_train_test_disjoint(self):
        for train, test in KFold(n_splits=4, seed=0).split(40):
            assert len(np.intersect1d(train, test)) == 0

    def test_train_plus_test_is_everything(self):
        for train, test in KFold(n_splits=4, seed=0).split(41):
            assert len(train) + len(test) == 41

    def test_too_few_samples(self):
        with pytest.raises(ValueError):
            list(KFold(n_splits=5).split(3))

    def test_no_shuffle_is_contiguous(self):
        splits = list(KFold(n_splits=2, shuffle=False).split(10))
        np.testing.assert_array_equal(splits[0][1], np.arange(5))


class TestStratifiedKFold:
    def test_preserves_class_ratio(self):
        y = np.array([1] * 20 + [0] * 80)
        for __, test in StratifiedKFold(n_splits=5, seed=0).split(y):
            test_labels = y[test]
            assert (test_labels == 1).sum() == 4
            assert (test_labels == 0).sum() == 16

    def test_partitions_everything(self):
        y = np.array([0, 1] * 25)
        seen = np.concatenate(
            [test for __, test in StratifiedKFold(5, seed=1).split(y)]
        )
        assert sorted(seen.tolist()) == list(range(50))

    def test_class_smaller_than_folds_rejected(self):
        y = np.array([1, 1, 0, 0, 0, 0, 0, 0])
        with pytest.raises(ValueError):
            list(StratifiedKFold(n_splits=3).split(y))


class TestTrainTestSplit:
    @pytest.fixture()
    def data(self):
        rng = np.random.default_rng(18)
        X = rng.normal(size=(100, 3))
        y = np.array([1] * 30 + [0] * 70)
        return X, y

    def test_sizes(self, data):
        X, y = data
        X_tr, X_te, y_tr, y_te = train_test_split(X, y, test_size=0.2)
        assert len(X_te) == len(y_te)
        assert len(X_tr) + len(X_te) == 100
        assert abs(len(X_te) - 20) <= 1

    def test_stratified_preserves_ratio(self, data):
        X, y = data
        __, __, __, y_te = train_test_split(X, y, test_size=0.2)
        assert (y_te == 1).sum() == 6

    def test_bad_test_size(self, data):
        X, y = data
        with pytest.raises(ValueError):
            train_test_split(X, y, test_size=1.5)

    def test_deterministic(self, data):
        X, y = data
        a = train_test_split(X, y, seed=3)
        b = train_test_split(X, y, seed=3)
        np.testing.assert_array_equal(a[1], b[1])

    def test_unstratified_runs(self, data):
        X, y = data
        X_tr, X_te, __, __ = train_test_split(X, y, stratify=False)
        assert len(X_tr) + len(X_te) == 100


class TestCrossValidate:
    def test_returns_expected_keys(self):
        rng = np.random.default_rng(19)
        X = rng.normal(size=(120, 2))
        y = (X[:, 0] > 0).astype(int)
        result = cross_validate(GaussianNB, X, y, n_splits=4)
        assert set(result) == {
            "precision",
            "recall",
            "f1",
            "precision_std",
            "recall_std",
            "f1_std",
        }

    def test_good_model_scores_high(self):
        rng = np.random.default_rng(20)
        X = np.vstack(
            [rng.normal(-3, 1, (60, 2)), rng.normal(3, 1, (60, 2))]
        )
        y = np.array([0] * 60 + [1] * 60)
        result = cross_validate(GaussianNB, X, y)
        assert result["precision"] > 0.9
        assert result["recall"] > 0.9

    def test_fresh_model_per_fold(self):
        """The factory must be invoked once per fold."""
        calls = []

        class Recorder(GaussianNB):
            def __init__(self):
                calls.append(1)
                super().__init__()

        rng = np.random.default_rng(21)
        X = rng.normal(size=(60, 2))
        y = (X[:, 0] > 0).astype(int)
        cross_validate(Recorder, X, y, n_splits=5)
        assert len(calls) == 5
