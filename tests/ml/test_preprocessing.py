"""Tests for repro.ml.preprocessing."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.ml.preprocessing import MinMaxScaler, StandardScaler

matrices = arrays(
    np.float64,
    st.tuples(st.integers(2, 12), st.integers(1, 5)),
    elements=st.floats(-100, 100, allow_nan=False),
)


class TestStandardScaler:
    def test_zero_mean_unit_variance(self):
        rng = np.random.default_rng(22)
        X = rng.normal(5.0, 3.0, size=(500, 4))
        Z = StandardScaler().fit_transform(X)
        np.testing.assert_allclose(Z.mean(axis=0), 0.0, atol=1e-9)
        np.testing.assert_allclose(Z.std(axis=0), 1.0, atol=1e-9)

    def test_constant_feature_no_nan(self):
        X = np.column_stack([np.ones(10), np.arange(10.0)])
        Z = StandardScaler().fit_transform(X)
        assert np.all(np.isfinite(Z))
        np.testing.assert_allclose(Z[:, 0], 0.0)

    def test_transform_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            StandardScaler().transform(np.zeros((2, 2)))

    def test_feature_count_mismatch(self):
        scaler = StandardScaler().fit(np.zeros((5, 3)))
        with pytest.raises(ValueError):
            scaler.transform(np.zeros((5, 4)))

    @given(matrices)
    @settings(max_examples=40)
    def test_inverse_roundtrip(self, X):
        scaler = StandardScaler().fit(X)
        back = scaler.inverse_transform(scaler.transform(X))
        np.testing.assert_allclose(back, X, atol=1e-6)


class TestMinMaxScaler:
    def test_range(self):
        rng = np.random.default_rng(23)
        X = rng.normal(size=(100, 3))
        Z = MinMaxScaler().fit_transform(X)
        np.testing.assert_allclose(Z.min(axis=0), 0.0, atol=1e-12)
        np.testing.assert_allclose(Z.max(axis=0), 1.0, atol=1e-12)

    def test_custom_range(self):
        X = np.arange(10.0).reshape(-1, 1)
        Z = MinMaxScaler(feature_range=(-1, 1)).fit_transform(X)
        assert Z.min() == pytest.approx(-1.0)
        assert Z.max() == pytest.approx(1.0)

    def test_invalid_range(self):
        with pytest.raises(ValueError):
            MinMaxScaler(feature_range=(1.0, 0.0))

    def test_constant_feature_no_nan(self):
        X = np.full((8, 1), 3.0)
        Z = MinMaxScaler().fit_transform(X)
        assert np.all(np.isfinite(Z))

    def test_transform_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            MinMaxScaler().transform(np.zeros((2, 2)))

    def test_feature_count_mismatch(self):
        scaler = MinMaxScaler().fit(np.zeros((4, 2)))
        with pytest.raises(ValueError):
            scaler.transform(np.zeros((4, 3)))

    @given(matrices)
    @settings(max_examples=40)
    def test_output_within_range(self, X):
        Z = MinMaxScaler().fit_transform(X)
        assert np.all(Z >= -1e-9)
        assert np.all(Z <= 1.0 + 1e-9)
