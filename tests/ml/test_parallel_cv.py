"""Parallel cross-validation and tuning: bitwise identity across workers."""

import numpy as np
import pytest

from repro.ml import GaussianNB, GradientBoostingClassifier, spawn_seeds
from repro.ml.model_selection import (
    _accepts_fold_seed,
    _map_ordered,
    cross_validate,
)
from repro.ml.tuning import grid_search


@pytest.fixture(scope="module")
def data():
    rng = np.random.default_rng(0)
    X = rng.normal(size=(200, 6))
    y = (X[:, 0] + X[:, 1] > 0).astype(int)
    return X, y


class TestSpawnSeeds:
    def test_deterministic_for_int_seed(self):
        assert spawn_seeds(42, 5) == spawn_seeds(42, 5)

    def test_children_differ(self):
        seeds = spawn_seeds(0, 8)
        assert len(set(seeds)) == 8

    def test_different_parents_different_children(self):
        assert spawn_seeds(1, 4) != spawn_seeds(2, 4)

    def test_rejects_negative_n(self):
        with pytest.raises(ValueError):
            spawn_seeds(0, -1)


class TestMapOrdered:
    def test_results_in_task_order(self):
        tasks = list(range(20))
        assert _map_ordered(lambda t: t * t, tasks, n_workers=4) == [
            t * t for t in tasks
        ]

    def test_serial_when_workers_none(self):
        assert _map_ordered(lambda t: t + 1, [1, 2], None) == [2, 3]

    def test_probe_pickles_one_task_not_the_list(self, monkeypatch):
        import pickle as pickle_module

        from repro.ml import model_selection

        probed = []
        real_dumps = pickle_module.dumps

        def spy(obj, *args, **kwargs):
            probed.append(obj)
            return real_dumps(obj, *args, **kwargs)

        monkeypatch.setattr(model_selection.pickle, "dumps", spy)
        tasks = list(range(50))
        _map_ordered(lambda t: t, tasks, n_workers=2)
        # The picklability probe must serialize (fn, first task), never
        # the whole task list (large batches would pay serialization
        # twice).
        assert probed, "probe never ran"
        fn, task = probed[0]
        assert task == tasks[0]
        assert not any(
            isinstance(obj, (list, tuple)) and len(obj) == len(tasks)
            for entry in probed
            for obj in (entry if isinstance(entry, tuple) else (entry,))
        )

    def test_one_worker_never_builds_a_pool(self, monkeypatch, data):
        """n_workers=1 must run inline: no process/thread pool, no
        pickle probe -- spawn+serialization overhead for nothing (the
        checked-in 1-CPU BENCH_training artifact showed 'parallel' CV
        slower than serial purely from that overhead)."""
        from repro.ml import model_selection

        def boom(*args, **kwargs):
            raise AssertionError("pool built for n_workers=1")

        monkeypatch.setattr(model_selection, "ProcessPoolExecutor", boom)
        monkeypatch.setattr(model_selection, "ThreadPoolExecutor", boom)
        monkeypatch.setattr(model_selection.pickle, "dumps", boom)
        assert _map_ordered(lambda t: t * 2, [1, 2, 3], n_workers=1) == [
            2,
            4,
            6,
        ]
        X, y = data
        cross_validate(GaussianNB, X, y, n_splits=3, n_workers=1)
        grid_search(
            lambda **kw: GaussianNB(),
            {"var_smoothing": [1e-9]},
            X,
            y,
            n_splits=3,
            n_workers=1,
        )

    def test_thread_fallback_is_counted(self):
        from repro.ml import model_selection

        class Unpicklable:
            def __reduce__(self):
                raise TypeError("not picklable")

        before = model_selection.N_THREAD_FALLBACKS
        result = _map_ordered(
            lambda t: 1, [Unpicklable(), Unpicklable()], n_workers=2
        )
        assert result == [1, 1]
        assert model_selection.N_THREAD_FALLBACKS == before + 1


class TestParallelCrossValidate:
    def test_identical_for_1_and_4_workers(self, data):
        X, y = data
        factory = lambda: GradientBoostingClassifier(
            n_estimators=8, max_depth=3, seed=0
        )
        serial = cross_validate(factory, X, y, n_workers=1)
        parallel = cross_validate(factory, X, y, n_workers=4)
        assert serial == parallel  # bitwise: dict of exact floats

    def test_identical_to_default_serial_path(self, data):
        X, y = data
        assert cross_validate(GaussianNB, X, y) == cross_validate(
            GaussianNB, X, y, n_workers=4
        )

    def test_fold_seed_factories_get_distinct_seeds(self, data):
        X, y = data
        seen = []

        def factory(fold_seed):
            seen.append(fold_seed)
            return GaussianNB()

        cross_validate(factory, X, y, n_splits=5, n_workers=1)
        assert len(seen) == 5
        assert len(set(seen)) == 5
        assert seen == spawn_seeds(0, 5)

    def test_fold_seed_identical_across_worker_counts(self, data):
        X, y = data

        def factory(fold_seed):
            return GradientBoostingClassifier(
                n_estimators=6, max_depth=2, seed=fold_seed
            )

        assert cross_validate(factory, X, y, n_workers=1) == cross_validate(
            factory, X, y, n_workers=4
        )

    def test_accepts_fold_seed_detection(self):
        assert _accepts_fold_seed(lambda fold_seed: None)
        assert not _accepts_fold_seed(lambda: None)
        assert not _accepts_fold_seed(lambda seed: None)
        assert not _accepts_fold_seed(GaussianNB)


class TestParallelGridSearch:
    def test_identical_for_1_and_4_workers(self, data):
        X, y = data
        serial = grid_search(
            lambda **kw: GradientBoostingClassifier(
                n_estimators=5, seed=0, **kw
            ),
            {"max_depth": [2, 3], "learning_rate": [0.1, 0.3]},
            X,
            y,
            n_splits=3,
            n_workers=1,
        )
        parallel = grid_search(
            lambda **kw: GradientBoostingClassifier(
                n_estimators=5, seed=0, **kw
            ),
            {"max_depth": [2, 3], "learning_rate": [0.1, 0.3]},
            X,
            y,
            n_splits=3,
            n_workers=4,
        )
        assert serial == parallel
        assert serial.trials == parallel.trials
