"""Tests for repro.ml.base validation helpers."""

import numpy as np
import pytest

from repro.ml.base import as_rng, check_array, check_X_y


class TestCheckArray:
    def test_accepts_2d(self):
        out = check_array([[1, 2], [3, 4]])
        assert out.shape == (2, 2)
        assert out.dtype == np.float64

    def test_promotes_1d(self):
        out = check_array([1.0, 2.0])
        assert out.shape == (2, 1)

    def test_rejects_3d(self):
        with pytest.raises(ValueError):
            check_array(np.zeros((2, 2, 2)))

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            check_array(np.zeros((0, 3)))

    def test_rejects_nan(self):
        with pytest.raises(ValueError):
            check_array([[np.nan]])

    def test_rejects_inf(self):
        with pytest.raises(ValueError):
            check_array([[np.inf]])


class TestCheckXY:
    def test_happy_path(self):
        X, y = check_X_y([[1.0], [2.0]], [0, 1])
        assert X.shape == (2, 1)
        assert y.dtype == np.int64

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            check_X_y([[1.0], [2.0]], [0])

    def test_rejects_multiclass(self):
        with pytest.raises(ValueError):
            check_X_y([[1.0], [2.0], [3.0]], [0, 1, 2])

    def test_rejects_2d_labels(self):
        with pytest.raises(ValueError):
            check_X_y([[1.0]], [[1]])

    def test_accepts_single_class(self):
        # A single-class batch is valid input (models may reject later).
        __, y = check_X_y([[1.0], [2.0]], [1, 1])
        assert set(y) == {1}


class TestAsRng:
    def test_none_gives_generator(self):
        assert isinstance(as_rng(None), np.random.Generator)

    def test_int_seed_deterministic(self):
        assert as_rng(5).random() == as_rng(5).random()

    def test_generator_passthrough(self):
        gen = np.random.default_rng(0)
        assert as_rng(gen) is gen
