"""Histogram tree method: binning correctness and hist/exact parity."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ml.gbdt import (
    GradientBoostingClassifier,
    _MAX_BINS,
    _BinMapper,
    _HistTreeBuilder,
)


class TestBinMapper:
    def test_few_distinct_values_get_exact_midpoints(self):
        X = np.array([[0.0], [1.0], [3.0], [1.0]])
        mapper = _BinMapper(n_bins=256)
        codes = mapper.fit_transform(X)
        np.testing.assert_allclose(mapper.split_points_[0], [0.5, 2.0])
        np.testing.assert_array_equal(codes[:, 0], [0, 1, 2, 1])

    def test_code_threshold_equivalence(self):
        """codes <= t must select exactly the rows with x <= splits[t]."""
        rng = np.random.default_rng(0)
        X = rng.normal(size=(500, 3))
        X[:, 1] = np.round(X[:, 1] * 2)  # heavy ties
        mapper = _BinMapper(n_bins=16)
        codes = mapper.fit_transform(X)
        for j in range(X.shape[1]):
            for t, threshold in enumerate(mapper.split_points_[j]):
                np.testing.assert_array_equal(
                    codes[:, j] <= t, X[:, j] <= threshold
                )

    def test_constant_column_has_no_split_points(self):
        mapper = _BinMapper()
        codes = mapper.fit_transform(np.full((10, 1), 7.0))
        assert len(mapper.split_points_[0]) == 0
        assert np.all(codes == 0)

    def test_many_distinct_values_capped_at_n_bins(self):
        rng = np.random.default_rng(1)
        X = rng.normal(size=(5000, 1))
        mapper = _BinMapper(n_bins=32)
        codes = mapper.fit_transform(X)
        assert len(mapper.split_points_[0]) <= 31
        assert codes.max() <= 31
        assert codes.dtype == np.uint8

    def test_rejects_out_of_range_n_bins(self):
        with pytest.raises(ValueError):
            _BinMapper(n_bins=1)
        with pytest.raises(ValueError):
            _BinMapper(n_bins=_MAX_BINS + 1)


class TestHistBuilder:
    def test_histogram_subtraction_consistent(self):
        """Sibling-by-subtraction equals directly built histograms."""
        rng = np.random.default_rng(2)
        X = rng.integers(0, 6, size=(300, 4)).astype(float)
        mapper = _BinMapper()
        codes = mapper.fit_transform(X)
        grad = rng.normal(size=300)
        hess = rng.uniform(0.1, 0.3, size=300)
        builder = _HistTreeBuilder(
            codes=codes,
            split_points=mapper.split_points_,
            max_depth=3,
            min_child_weight=1e-3,
            reg_lambda=1.0,
            gamma=0.0,
            colsample=1.0,
            rng=np.random.default_rng(0),
        )
        builder._set_columns(np.arange(4))

        rows = np.arange(300)
        left, right = rows[:120], rows[120:]
        parent_g, parent_h = builder._histogram(grad, hess, rows)
        left_g, left_h = builder._histogram(grad, hess, left)
        right_g, right_h = builder._histogram(grad, hess, right)
        np.testing.assert_allclose(parent_g - left_g, right_g, atol=1e-12)
        np.testing.assert_allclose(parent_h - left_h, right_h, atol=1e-12)


def _assert_hist_matches_exact(X, y, **params):
    exact = GradientBoostingClassifier(tree_method="exact", **params).fit(X, y)
    hist = GradientBoostingClassifier(tree_method="hist", **params).fit(X, y)
    # With n_bins >= n_distinct, every exact cut point exists as a bin
    # boundary, so both methods partition the training rows identically
    # and every leaf carries the same weight.
    np.testing.assert_array_equal(exact.predict(X), hist.predict(X))
    np.testing.assert_allclose(
        exact.predict_proba(X), hist.predict_proba(X), rtol=0, atol=1e-9
    )


class TestHistExactParity:
    @settings(deadline=None, max_examples=30, derandomize=True)
    @given(
        n=st.integers(20, 80),
        f=st.integers(1, 4),
        levels=st.integers(2, 10),
        seed=st.integers(0, 1000),
    )
    def test_hist_equals_exact_on_integer_grids(self, n, f, levels, seed):
        """With n_bins >= n_distinct the two methods agree on training
        predictions (thresholds may differ numerically, partitions not)."""
        rng = np.random.default_rng(seed)
        X = rng.integers(0, levels, size=(n, f)).astype(np.float64)
        y = rng.integers(0, 2, size=n)
        if y.min() == y.max():
            y[0] = 1 - y[0]
        _assert_hist_matches_exact(
            X, y, n_estimators=5, max_depth=3, seed=seed
        )

    def test_parity_with_regularization_knobs(self):
        rng = np.random.default_rng(7)
        X = rng.integers(-3, 4, size=(200, 5)).astype(np.float64)
        y = (X[:, 0] + X[:, 1] > 0).astype(int)
        _assert_hist_matches_exact(
            X,
            y,
            n_estimators=8,
            max_depth=4,
            reg_lambda=2.0,
            gamma=0.1,
            min_child_weight=0.5,
            seed=3,
        )

    def test_parity_under_row_and_column_sampling(self):
        """Both methods consume the rng identically, so sampled rows and
        columns coincide and parity still holds."""
        rng = np.random.default_rng(11)
        X = rng.integers(0, 5, size=(300, 6)).astype(np.float64)
        y = (X.sum(axis=1) > 12).astype(int)
        _assert_hist_matches_exact(
            X,
            y,
            n_estimators=6,
            max_depth=3,
            subsample=0.8,
            colsample=0.5,
            seed=5,
        )

    def test_hist_close_to_exact_on_continuous_data(self):
        """On continuous features (binning is lossy) hist stays within
        paper-irrelevant distance of exact on held-out F1."""
        from repro.ml.metrics import f1_score

        rng = np.random.default_rng(0)
        n, f = 2000, 10
        X = rng.normal(size=(n, f))
        w = rng.normal(size=f)
        y = ((X @ w + 0.3 * rng.normal(size=n)) > 0).astype(int)
        X_test = rng.normal(size=(1000, f))
        y_test = ((X_test @ w) > 0).astype(int)
        scores = {}
        for method in ("exact", "hist"):
            model = GradientBoostingClassifier(
                n_estimators=15, max_depth=3, tree_method=method, seed=0
            ).fit(X, y)
            scores[method] = f1_score(y_test, model.predict(X_test))
        assert abs(scores["hist"] - scores["exact"]) < 0.02


class TestDefaultsAndImportances:
    def test_default_tree_method_is_hist(self):
        assert GradientBoostingClassifier().tree_method == "hist"

    def test_invalid_tree_method_rejected(self):
        with pytest.raises(ValueError):
            GradientBoostingClassifier(tree_method="approx")

    def test_feature_importances_match_across_methods(self):
        rng = np.random.default_rng(4)
        X = rng.integers(0, 6, size=(250, 5)).astype(np.float64)
        y = (X[:, 2] > 2).astype(int)
        kw = dict(n_estimators=5, max_depth=3, seed=2)
        exact = GradientBoostingClassifier(tree_method="exact", **kw).fit(X, y)
        hist = GradientBoostingClassifier(tree_method="hist", **kw).fit(X, y)
        np.testing.assert_array_equal(
            exact.feature_importances("weight"),
            hist.feature_importances("weight"),
        )

    def test_importances_sum_matches_split_count(self):
        rng = np.random.default_rng(5)
        X = rng.normal(size=(200, 4))
        y = (X[:, 0] > 0).astype(int)
        model = GradientBoostingClassifier(
            n_estimators=5, max_depth=3, seed=0
        ).fit(X, y)
        weight = model.feature_importances("weight")
        n_internal = sum(
            int((tree.feature != -1).sum()) for tree in model.trees_
        )
        assert weight.sum() == n_internal
        assert weight.dtype == np.float64
