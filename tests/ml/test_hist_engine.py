"""Level-synchronous histogram engine: byte-identity to the per-node path.

``tree_method="hist"`` now grows trees with
:class:`repro.ml.hist_engine.LevelHistEngine`; ``"hist-pernode"`` keeps
the original recursive :class:`~repro.ml.gbdt._HistTreeBuilder` as the
reference.  These tests pin the contract the engine is built on: for
*any* ``n_tree_workers`` the engine must produce byte-identical trees
(node arrays, split points, leaf weights), identical recorded leaf
assignments, and ``np.array_equal`` margins.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ml.gbdt import (
    GradientBoostingClassifier,
    _BinMapper,
    _HistTreeBuilder,
)
from repro.ml.hist_engine import LevelHistEngine

_TREE_FIELDS = (
    "children_left",
    "children_right",
    "feature",
    "threshold",
    "leaf_weight",
    "split_gain",
)


def _assert_trees_byte_identical(a, b):
    assert len(a.trees_) == len(b.trees_)
    for ta, tb in zip(a.trees_, b.trees_):
        for field in _TREE_FIELDS:
            xa, xb = getattr(ta, field), getattr(tb, field)
            assert xa.dtype == xb.dtype, field
            np.testing.assert_array_equal(xa, xb, err_msg=field)


def _assert_engine_matches_pernode(X, y, n_tree_workers, **params):
    reference = GradientBoostingClassifier(
        tree_method="hist-pernode", **params
    ).fit(X, y)
    engine = GradientBoostingClassifier(
        tree_method="hist", n_tree_workers=n_tree_workers, **params
    ).fit(X, y)
    _assert_trees_byte_identical(reference, engine)
    assert np.array_equal(
        reference.decision_function_reference(X),
        engine.decision_function_reference(X),
    )
    return reference, engine


class TestEngineMatchesPerNode:
    @settings(deadline=None, max_examples=30, derandomize=True)
    @given(
        n=st.integers(20, 120),
        f=st.integers(1, 5),
        seed=st.integers(0, 1000),
        workers=st.sampled_from([1, 2, 3, 7]),
        colsample=st.sampled_from([1.0, 0.6, 0.3]),
        subsample=st.sampled_from([1.0, 0.7]),
    )
    def test_byte_identical_on_continuous_data(
        self, n, f, seed, workers, colsample, subsample
    ):
        """Continuous features, every worker count: trees, margins and
        dtypes all byte-identical to the per-node builder."""
        rng = np.random.default_rng(seed)
        X = rng.normal(size=(n, f))
        y = (X[:, 0] + 0.5 * rng.normal(size=n) > 0).astype(int)
        if y.min() == y.max():
            y[0] = 1 - y[0]
        _assert_engine_matches_pernode(
            X,
            y,
            n_tree_workers=workers,
            n_estimators=4,
            max_depth=4,
            colsample=colsample,
            subsample=subsample,
            seed=seed,
        )

    @settings(deadline=None, max_examples=25, derandomize=True)
    @given(
        n=st.integers(20, 80),
        f=st.integers(1, 4),
        levels=st.integers(2, 10),
        seed=st.integers(0, 1000),
        workers=st.sampled_from([1, 2, 3, 7]),
    )
    def test_byte_identical_on_integer_grids(
        self, n, f, levels, seed, workers
    ):
        """Integer grids (heavy bin ties, the regime where the exact
        method is also comparable) stay byte-identical too."""
        rng = np.random.default_rng(seed)
        X = rng.integers(0, levels, size=(n, f)).astype(np.float64)
        y = rng.integers(0, 2, size=n)
        if y.min() == y.max():
            y[0] = 1 - y[0]
        _assert_engine_matches_pernode(
            X,
            y,
            n_tree_workers=workers,
            n_estimators=5,
            max_depth=3,
            seed=seed,
        )

    def test_regularization_knobs(self):
        rng = np.random.default_rng(3)
        X = rng.normal(size=(200, 6))
        y = (X[:, 0] + X[:, 1] > 0).astype(int)
        for workers in (1, 2, 3, 7):
            _assert_engine_matches_pernode(
                X,
                y,
                n_tree_workers=workers,
                n_estimators=6,
                max_depth=5,
                reg_lambda=2.0,
                gamma=0.3,
                min_child_weight=0.5,
                n_bins=16,
                seed=7,
            )

    def test_worker_counts_identical_to_each_other(self):
        """All worker counts give the same model, not just the same as
        the reference: the column-block partition never changes sums."""
        rng = np.random.default_rng(11)
        X = rng.normal(size=(150, 9))
        y = (X[:, 2] > 0).astype(int)
        fits = [
            GradientBoostingClassifier(
                n_estimators=4, max_depth=4, n_tree_workers=w, seed=0
            ).fit(X, y)
            for w in (None, 1, 2, 3, 7)
        ]
        for other in fits[1:]:
            _assert_trees_byte_identical(fits[0], other)


class TestEngineMatchesExactOnGrids:
    @settings(deadline=None, max_examples=20, derandomize=True)
    @given(
        n=st.integers(20, 80),
        f=st.integers(1, 4),
        levels=st.integers(2, 8),
        seed=st.integers(0, 1000),
        workers=st.sampled_from([1, 3]),
    )
    def test_engine_equals_exact_predictions(
        self, n, f, levels, seed, workers
    ):
        """With n_bins >= n_distinct the engine partitions rows exactly
        like the exact greedy method (same contract the per-node hist
        path already honored)."""
        rng = np.random.default_rng(seed)
        X = rng.integers(0, levels, size=(n, f)).astype(np.float64)
        y = rng.integers(0, 2, size=n)
        if y.min() == y.max():
            y[0] = 1 - y[0]
        params = dict(n_estimators=5, max_depth=3, seed=seed)
        exact = GradientBoostingClassifier(
            tree_method="exact", **params
        ).fit(X, y)
        engine = GradientBoostingClassifier(
            tree_method="hist", n_tree_workers=workers, **params
        ).fit(X, y)
        np.testing.assert_array_equal(exact.predict(X), engine.predict(X))
        np.testing.assert_allclose(
            exact.predict_proba(X), engine.predict_proba(X), rtol=0, atol=1e-9
        )


class TestDegenerateTrees:
    def test_constant_features_give_single_node_trees(self):
        """No split points at all: every tree is one root leaf, exactly
        like the per-node builder's."""
        X = np.full((40, 3), 2.5)
        y = np.array([0, 1] * 20)
        ref, eng = _assert_engine_matches_pernode(
            X, y, n_tree_workers=2, n_estimators=3, seed=0
        )
        for tree in eng.trees_:
            assert len(tree.feature) == 1
            assert tree.feature[0] == -1

    def test_huge_gamma_blocks_all_splits(self):
        rng = np.random.default_rng(0)
        X = rng.normal(size=(60, 3))
        y = (X[:, 0] > 0).astype(int)
        ref, eng = _assert_engine_matches_pernode(
            X, y, n_tree_workers=3, n_estimators=2, gamma=1e9, seed=1
        )
        assert all(len(t.feature) == 1 for t in eng.trees_)

    def test_huge_min_child_weight_stops_at_root(self):
        rng = np.random.default_rng(1)
        X = rng.normal(size=(50, 2))
        y = (X[:, 0] > 0).astype(int)
        _assert_engine_matches_pernode(
            X, y, n_tree_workers=2, n_estimators=2,
            min_child_weight=1e6, seed=2,
        )

    def test_more_workers_than_features(self):
        """Worker count far above the column count: blocks degenerate to
        one column each and the result is unchanged."""
        rng = np.random.default_rng(2)
        X = rng.normal(size=(80, 2))
        y = (X[:, 0] > 0).astype(int)
        _assert_engine_matches_pernode(
            X, y, n_tree_workers=7, n_estimators=3, seed=3
        )


class TestEngineDirect:
    """White-box checks against the builder on a single tree."""

    def _fixture(self):
        rng = np.random.default_rng(5)
        X = rng.normal(size=(300, 4))
        X[:, 1] = np.round(X[:, 1])  # ties
        mapper = _BinMapper(n_bins=32)
        codes = mapper.fit_transform(X)
        grad = rng.normal(size=300)
        hess = rng.uniform(0.1, 0.4, size=300)
        return codes, mapper.split_points_, grad, hess

    def test_single_tree_and_leaf_assignment_parity(self):
        codes, split_points, grad, hess = self._fixture()
        params = dict(
            max_depth=4,
            min_child_weight=1e-3,
            reg_lambda=1.0,
            gamma=0.0,
            colsample=0.75,
        )
        rows = np.arange(300)
        ref_tree, ref_leaf = _HistTreeBuilder(
            codes=codes,
            split_points=split_points,
            rng=np.random.default_rng(9),
            **params,
        ).build(grad, hess, rows)
        with LevelHistEngine(
            codes=codes, split_points=split_points, n_workers=2, **params
        ) as engine:
            eng_tree, eng_leaf = engine.build(
                grad, hess, rows, np.random.default_rng(9)
            )
        for field in _TREE_FIELDS:
            a = getattr(ref_tree, field)
            b = getattr(eng_tree, field)
            assert a.dtype == b.dtype, field
            np.testing.assert_array_equal(a, b, err_msg=field)
        assert ref_leaf.dtype == eng_leaf.dtype
        np.testing.assert_array_equal(ref_leaf, eng_leaf)

    def test_buffers_reused_across_builds_stay_correct(self):
        """Back-to-back builds reuse the ping-pong buffers; a second
        build must not see the first one's stale cells."""
        codes, split_points, grad, hess = self._fixture()
        params = dict(
            max_depth=3,
            min_child_weight=1e-3,
            reg_lambda=1.0,
            gamma=0.0,
            colsample=1.0,
        )
        rows = np.arange(300)
        engine = LevelHistEngine(
            codes=codes, split_points=split_points, n_workers=1, **params
        )
        first, _ = engine.build(grad, hess, rows, np.random.default_rng(0))
        # Different gradients in between -> different buffer contents.
        engine.build(grad * -2.0, hess, rows, np.random.default_rng(1))
        again, _ = engine.build(grad, hess, rows, np.random.default_rng(0))
        engine.close()
        for field in _TREE_FIELDS:
            np.testing.assert_array_equal(
                getattr(first, field), getattr(again, field), err_msg=field
            )

    def test_rejects_bad_worker_count(self):
        codes, split_points, _, _ = self._fixture()
        with pytest.raises(ValueError):
            LevelHistEngine(
                codes=codes,
                split_points=split_points,
                max_depth=3,
                min_child_weight=1.0,
                reg_lambda=1.0,
                gamma=0.0,
                colsample=1.0,
                n_workers=0,
            )
        with pytest.raises(ValueError):
            GradientBoostingClassifier(n_tree_workers=0)

    def test_close_is_idempotent(self):
        codes, split_points, _, _ = self._fixture()
        engine = LevelHistEngine(
            codes=codes,
            split_points=split_points,
            max_depth=3,
            min_child_weight=1.0,
            reg_lambda=1.0,
            gamma=0.0,
            colsample=1.0,
            n_workers=2,
        )
        engine.close()
        engine.close()


class TestMethodRegistry:
    def test_pernode_method_accepted(self):
        assert (
            GradientBoostingClassifier(tree_method="hist-pernode").tree_method
            == "hist-pernode"
        )

    def test_detector_config_threads_workers_through(self):
        """DetectorConfig.tree_workers reaches the GBDT model."""
        from repro.core.config import CATSConfig, DetectorConfig
        from repro.core.detector import Detector

        rng = np.random.default_rng(0)
        X = rng.normal(size=(60, 11))
        y = (X[:, 0] > 0).astype(int)
        config = CATSConfig(detector=DetectorConfig(tree_workers=2))
        detector = Detector(config.detector, config.rules).fit(X, y)
        assert detector.model.n_tree_workers == 2
        baseline = Detector(
            CATSConfig().detector, CATSConfig().rules
        ).fit(X, y)
        np.testing.assert_array_equal(
            detector.model.decision_function_reference(X),
            baseline.model.decision_function_reference(X),
        )
