"""Contract tests every classifier must satisfy."""

import numpy as np
import pytest

from repro.ml import (
    AdaBoostClassifier,
    DecisionTreeClassifier,
    GaussianNB,
    GradientBoostingClassifier,
    LinearSVC,
    MLPClassifier,
)

FACTORIES = {
    "gbdt": lambda: GradientBoostingClassifier(n_estimators=25, seed=0),
    "svm": lambda: LinearSVC(max_iter=120, seed=0),
    "adaboost": lambda: AdaBoostClassifier(n_estimators=25),
    "mlp": lambda: MLPClassifier(
        hidden_layer_sizes=(16,), max_epochs=40, seed=0
    ),
    "tree": lambda: DecisionTreeClassifier(max_depth=6),
    "gnb": lambda: GaussianNB(),
}


@pytest.fixture(scope="module")
def separable_data():
    rng = np.random.default_rng(3)
    X = rng.normal(size=(300, 5))
    w = np.array([1.5, -2.0, 0.5, 0.0, 1.0])
    y = (X @ w > 0).astype(int)
    return X, y


@pytest.fixture(scope="module")
def noisy_data():
    rng = np.random.default_rng(4)
    X = rng.normal(size=(400, 4))
    w = np.array([1.0, -1.0, 0.5, 0.2])
    y = (X @ w + 0.8 * rng.normal(size=400) > 0).astype(int)
    return X, y


@pytest.mark.parametrize("name", sorted(FACTORIES))
class TestClassifierContract:
    def test_fit_returns_self(self, name, separable_data):
        X, y = separable_data
        model = FACTORIES[name]()
        assert model.fit(X, y) is model

    def test_learns_separable_data(self, name, separable_data):
        X, y = separable_data
        model = FACTORIES[name]().fit(X, y)
        assert model.score(X, y) > 0.85

    def test_generalizes_on_noisy_data(self, name, noisy_data):
        X, y = noisy_data
        model = FACTORIES[name]().fit(X[:300], y[:300])
        assert model.score(X[300:], y[300:]) > 0.7

    def test_predict_shape_and_dtype(self, name, separable_data):
        X, y = separable_data
        model = FACTORIES[name]().fit(X, y)
        pred = model.predict(X[:7])
        assert pred.shape == (7,)
        assert set(np.unique(pred)) <= {0, 1}

    def test_proba_shape_and_normalization(self, name, separable_data):
        X, y = separable_data
        model = FACTORIES[name]().fit(X, y)
        proba = model.predict_proba(X[:11])
        assert proba.shape == (11, 2)
        assert np.all(proba >= 0.0) and np.all(proba <= 1.0)
        np.testing.assert_allclose(proba.sum(axis=1), 1.0, atol=1e-9)

    def test_unfitted_predict_raises(self, name):
        model = FACTORIES[name]()
        with pytest.raises(RuntimeError):
            model.predict(np.zeros((2, 5)))

    def test_feature_count_mismatch_raises(self, name, separable_data):
        X, y = separable_data
        model = FACTORIES[name]().fit(X, y)
        with pytest.raises(ValueError):
            model.predict(np.zeros((2, X.shape[1] + 1)))

    def test_rejects_non_binary_labels(self, name, separable_data):
        X, __ = separable_data
        bad = np.full(len(X), 2)
        with pytest.raises(ValueError):
            FACTORIES[name]().fit(X, bad)

    def test_rejects_nan_features(self, name, separable_data):
        X, y = separable_data
        bad = X.copy()
        bad[0, 0] = np.nan
        with pytest.raises(ValueError):
            FACTORIES[name]().fit(bad, y)

    def test_deterministic_given_seed(self, name, noisy_data):
        X, y = noisy_data
        a = FACTORIES[name]().fit(X, y).predict_proba(X[:20])
        b = FACTORIES[name]().fit(X, y).predict_proba(X[:20])
        np.testing.assert_array_equal(a, b)
