"""Tests for repro.ml.svm (dual coordinate descent linear SVM)."""

import numpy as np
import pytest

from repro.ml.svm import LinearSVC


@pytest.fixture(scope="module")
def linear_data():
    rng = np.random.default_rng(7)
    X = rng.normal(size=(300, 3))
    w = np.array([2.0, -1.0, 0.5])
    y = (X @ w + 0.4 > 0).astype(int)
    return X, y


class TestValidation:
    def test_bad_c(self):
        with pytest.raises(ValueError):
            LinearSVC(C=0.0)

    def test_bad_class_weight(self):
        with pytest.raises(ValueError):
            LinearSVC(class_weight="magic")


class TestTraining:
    def test_recovers_linear_boundary(self, linear_data):
        X, y = linear_data
        model = LinearSVC(seed=0).fit(X, y)
        assert model.score(X, y) > 0.95

    def test_weight_direction(self, linear_data):
        X, y = linear_data
        model = LinearSVC(seed=0).fit(X, y)
        # Learned weights should correlate with the generating weights.
        w_true = np.array([2.0, -1.0, 0.5])
        cosine = model.coef_ @ w_true / (
            np.linalg.norm(model.coef_) * np.linalg.norm(w_true)
        )
        assert cosine > 0.9

    def test_intercept_learned(self):
        rng = np.random.default_rng(8)
        X = rng.normal(loc=0.0, size=(200, 1))
        y = (X[:, 0] > 1.0).astype(int)  # offset boundary
        model = LinearSVC(seed=0).fit(X, y)
        assert model.intercept_ < 0.0
        assert model.score(X, y) > 0.9

    def test_no_intercept_option(self, linear_data):
        X, y = linear_data
        model = LinearSVC(fit_intercept=False, seed=0).fit(X, y)
        assert model.intercept_ == 0.0

    def test_support_vector_count_bounded(self, linear_data):
        X, y = linear_data
        model = LinearSVC(seed=0).fit(X, y)
        assert 0 < model.n_support_ <= len(y)

    def test_larger_c_fits_harder(self):
        rng = np.random.default_rng(9)
        X = rng.normal(size=(200, 2))
        y = (X[:, 0] + 0.5 * rng.normal(size=200) > 0).astype(int)
        soft = LinearSVC(C=1e-3, seed=0).fit(X, y)
        hard = LinearSVC(C=10.0, seed=0).fit(X, y)
        assert hard.score(X, y) >= soft.score(X, y)

    def test_balanced_class_weight_improves_minority_recall(self):
        rng = np.random.default_rng(10)
        n_min = 15
        X = np.vstack(
            [
                rng.normal(-1.0, 1.0, size=(300, 2)),
                rng.normal(1.2, 1.0, size=(n_min, 2)),
            ]
        )
        y = np.array([0] * 300 + [1] * n_min)
        plain = LinearSVC(seed=0).fit(X, y)
        balanced = LinearSVC(class_weight="balanced", seed=0).fit(X, y)
        recall = lambda m: (m.predict(X)[y == 1] == 1).mean()
        assert recall(balanced) >= recall(plain)


class TestDecisionFunction:
    def test_sign_matches_predict(self, linear_data):
        X, y = linear_data
        model = LinearSVC(seed=0).fit(X, y)
        margin = model.decision_function(X)
        np.testing.assert_array_equal(
            model.predict(X), (margin >= 0).astype(int)
        )

    def test_proba_monotone_in_margin(self, linear_data):
        X, y = linear_data
        model = LinearSVC(seed=0).fit(X, y)
        margin = model.decision_function(X)
        proba = model.predict_proba(X)[:, 1]
        order = np.argsort(margin)
        assert np.all(np.diff(proba[order]) >= -1e-12)
