"""Tests for repro.ml.gbdt (XGBoost-style boosting)."""

import numpy as np
import pytest

from repro.ml.gbdt import GradientBoostingClassifier, _sigmoid


@pytest.fixture(scope="module")
def ring_data():
    """A nonlinear target (inside/outside a ring)."""
    rng = np.random.default_rng(5)
    X = rng.uniform(-2, 2, size=(500, 2))
    y = (np.hypot(X[:, 0], X[:, 1]) < 1.2).astype(int)
    return X, y


class TestValidation:
    def test_bad_n_estimators(self):
        with pytest.raises(ValueError):
            GradientBoostingClassifier(n_estimators=0)

    def test_bad_learning_rate(self):
        with pytest.raises(ValueError):
            GradientBoostingClassifier(learning_rate=0.0)

    def test_bad_subsample(self):
        with pytest.raises(ValueError):
            GradientBoostingClassifier(subsample=1.5)

    def test_bad_colsample(self):
        with pytest.raises(ValueError):
            GradientBoostingClassifier(colsample=0.0)


class TestTraining:
    def test_solves_nonlinear_problem(self, ring_data):
        X, y = ring_data
        model = GradientBoostingClassifier(
            n_estimators=60, max_depth=3, seed=0
        ).fit(X, y)
        assert model.score(X, y) > 0.95

    def test_more_rounds_reduce_training_error(self, ring_data):
        X, y = ring_data
        few = GradientBoostingClassifier(n_estimators=3, seed=0).fit(X, y)
        many = GradientBoostingClassifier(n_estimators=80, seed=0).fit(X, y)
        assert many.score(X, y) >= few.score(X, y)

    def test_base_margin_is_log_odds(self):
        X = np.random.default_rng(0).normal(size=(100, 2))
        y = np.array([1] * 25 + [0] * 75)
        model = GradientBoostingClassifier(n_estimators=1).fit(X, y)
        assert model.base_margin_ == pytest.approx(np.log(25 / 75))

    def test_subsample_and_colsample_run(self, ring_data):
        X, y = ring_data
        model = GradientBoostingClassifier(
            n_estimators=30, subsample=0.7, colsample=0.5, seed=1
        ).fit(X, y)
        assert model.score(X, y) > 0.85

    def test_gamma_prunes_splits(self, ring_data):
        X, y = ring_data
        loose = GradientBoostingClassifier(
            n_estimators=20, gamma=0.0, seed=0
        ).fit(X, y)
        tight = GradientBoostingClassifier(
            n_estimators=20, gamma=50.0, seed=0
        ).fit(X, y)
        assert tight.total_node_count < loose.total_node_count

    def test_min_child_weight_prunes(self, ring_data):
        X, y = ring_data
        loose = GradientBoostingClassifier(
            n_estimators=10, min_child_weight=0.5, seed=0
        ).fit(X, y)
        tight = GradientBoostingClassifier(
            n_estimators=10, min_child_weight=30.0, seed=0
        ).fit(X, y)
        assert tight.total_node_count <= loose.total_node_count


class TestDecisionFunction:
    def test_matches_proba_through_sigmoid(self, ring_data):
        X, y = ring_data
        model = GradientBoostingClassifier(n_estimators=10, seed=0).fit(X, y)
        margin = model.decision_function(X[:20])
        proba = model.predict_proba(X[:20])[:, 1]
        np.testing.assert_allclose(proba, _sigmoid(margin))


class TestImportance:
    def test_weight_importance_counts_splits(self, ring_data):
        X, y = ring_data
        model = GradientBoostingClassifier(n_estimators=15, seed=0).fit(X, y)
        weight = model.feature_importances("weight")
        total_internal = sum(
            int(np.sum(tree.feature != -1)) for tree in model.trees_
        )
        assert weight.sum() == total_internal

    def test_gain_importance_nonnegative(self, ring_data):
        X, y = ring_data
        model = GradientBoostingClassifier(n_estimators=15, seed=0).fit(X, y)
        assert np.all(model.feature_importances("gain") >= 0.0)

    def test_irrelevant_feature_scores_low(self):
        rng = np.random.default_rng(2)
        X = np.column_stack(
            [rng.normal(size=400), rng.normal(size=400)]
        )
        y = (X[:, 0] > 0).astype(int)
        model = GradientBoostingClassifier(n_estimators=25, seed=0).fit(X, y)
        importance = model.feature_importances("weight")
        assert importance[0] > importance[1]

    def test_unknown_kind_raises(self, ring_data):
        X, y = ring_data
        model = GradientBoostingClassifier(n_estimators=2, seed=0).fit(X, y)
        with pytest.raises(ValueError):
            model.feature_importances("cover")


class TestSigmoid:
    def test_extremes_do_not_overflow(self):
        out = _sigmoid(np.array([-1e6, 0.0, 1e6]))
        assert out[0] == pytest.approx(0.0, abs=1e-12)
        assert out[1] == pytest.approx(0.5)
        assert out[2] == pytest.approx(1.0, abs=1e-12)
