"""Tests for repro.core.features (the 11 Table II features)."""

import numpy as np
import pytest

from repro.core.features import FEATURE_NAMES, N_FEATURES, FeatureExtractor


@pytest.fixture(scope="module")
def extractor(analyzer):
    return FeatureExtractor(analyzer)


def idx(name):
    return FEATURE_NAMES.index(name)


class TestFeatureNames:
    def test_eleven_features(self):
        assert N_FEATURES == 11
        assert len(FEATURE_NAMES) == 11

    def test_paper_names_present(self):
        for name in (
            "averagePositiveNumber",
            "averagePositive/NegativeNumber",
            "uniqueWordRatio",
            "averageSentiment",
            "averageCommentEntropy",
            "averageCommentLength",
            "sumCommentLength",
            "sumPunctuationNumber",
            "averagePunctuationRatio",
            "averageNgramNumber",
            "averageNgramRatio",
        ):
            assert name in FEATURE_NAMES


class TestExtract:
    def test_vector_shape(self, extractor):
        vec = extractor.extract(["haoping!"])
        assert vec.shape == (N_FEATURES,)

    def test_empty_item_is_zero_vector(self, extractor):
        np.testing.assert_array_equal(
            extractor.extract([]), np.zeros(N_FEATURES)
        )

    def test_all_finite(self, extractor, language, rng):
        from repro.ecommerce.language import PROMO_STYLE

        comments = [
            language.generate_comment(PROMO_STYLE, rng)[0] for __ in range(5)
        ]
        vec = extractor.extract(comments)
        assert np.all(np.isfinite(vec))

    def test_sum_comment_length_counts_words(self, extractor, analyzer):
        text = "haoping"
        words = analyzer.segment(text)
        vec = extractor.extract([text, text])
        assert vec[idx("sumCommentLength")] == 2 * len(words)

    def test_average_comment_length(self, extractor):
        vec = extractor.extract(["haoping", "haoping"])
        assert vec[idx("averageCommentLength")] == pytest.approx(
            vec[idx("sumCommentLength")] / 2
        )

    def test_punctuation_counted(self, extractor):
        clean = extractor.extract(["haoping"])
        noisy = extractor.extract(["haoping,,!"])
        assert (
            noisy[idx("sumPunctuationNumber")]
            > clean[idx("sumPunctuationNumber")]
        )
        assert noisy[idx("sumPunctuationNumber")] == 3.0

    def test_positive_number_uses_lexicon(self, extractor, analyzer):
        positive_word = next(iter(analyzer.lexicon.positive))
        vec = extractor.extract([positive_word])
        assert vec[idx("averagePositiveNumber")] >= 1.0

    def test_positive_number_counts_distinct(self, extractor, analyzer):
        positive_word = next(iter(analyzer.lexicon.positive))
        once = extractor.extract([positive_word])
        thrice = extractor.extract([positive_word * 3])
        # Set semantics: repeating the same positive word does not
        # increase the distinct count.
        assert thrice[idx("averagePositiveNumber")] == pytest.approx(
            once[idx("averagePositiveNumber")], abs=1.0
        )

    def test_pos_neg_difference_absolute(self, extractor, analyzer):
        pos = next(iter(analyzer.lexicon.positive))
        neg = next(iter(analyzer.lexicon.negative))
        vec = extractor.extract([neg])
        assert vec[idx("averagePositive/NegativeNumber")] >= 0.0
        both = extractor.extract([pos + neg])
        assert both[idx("averagePositive/NegativeNumber")] >= 0.0

    def test_unique_word_ratio_bounds(self, extractor, language, rng):
        from repro.ecommerce.language import PROMO_STYLE

        comments = [
            language.generate_comment(PROMO_STYLE, rng)[0] for __ in range(3)
        ]
        vec = extractor.extract(comments)
        assert 0.0 < vec[idx("uniqueWordRatio")] <= 1.0

    def test_sentiment_in_unit_interval(self, extractor, language, rng):
        from repro.ecommerce.language import ORGANIC_NEGATIVE_STYLE

        comments = [
            language.generate_comment(ORGANIC_NEGATIVE_STYLE, rng)[0]
            for __ in range(3)
        ]
        vec = extractor.extract(comments)
        assert 0.0 <= vec[idx("averageSentiment")] <= 1.0

    def test_ngram_ratio_bounded_by_one(self, extractor, language, rng):
        from repro.ecommerce.language import PROMO_STYLE

        comments = [
            language.generate_comment(PROMO_STYLE, rng)[0] for __ in range(4)
        ]
        vec = extractor.extract(comments)
        assert 0.0 <= vec[idx("averageNgramRatio")] <= 1.0


class TestDegenerateComments:
    """Comments that stress the per-comment denominators."""

    def test_punctuation_only_comment_segments_to_zero_words(
        self, extractor, analyzer
    ):
        text = "!!,,.."
        assert analyzer.segment(text) == []
        vec = extractor.extract([text])
        assert np.all(np.isfinite(vec))
        # No words: word-derived features are zero ...
        assert vec[idx("sumCommentLength")] == 0.0
        assert vec[idx("uniqueWordRatio")] == 0.0
        assert vec[idx("averageCommentEntropy")] == 0.0
        assert vec[idx("averageNgramNumber")] == 0.0
        assert vec[idx("averageNgramRatio")] == 0.0
        # ... but the structural punctuation features still count.
        assert vec[idx("sumPunctuationNumber")] == 6.0
        assert vec[idx("averagePunctuationRatio")] == 1.0

    def test_single_word_comment_skips_bigram_ratio(
        self, extractor, analyzer
    ):
        # One word -> no bigrams; the len(words) > 1 guard must keep
        # the ratio term out of the sum instead of dividing by zero.
        text = "haoping"
        assert len(analyzer.segment(text)) == 1
        vec = extractor.extract([text])
        assert np.all(np.isfinite(vec))
        assert vec[idx("averageNgramNumber")] == 0.0
        assert vec[idx("averageNgramRatio")] == 0.0
        assert vec[idx("averageCommentLength")] == 1.0

    def test_mixed_degenerate_batch_denominators(self, extractor, analyzer):
        # [zero-word, one-word, two-word]: averages divide by the
        # *comment* count (3), word ratios by the *word* count (3).
        comments = ["!!", "haoping", "haoping haoping"]
        total_words = sum(len(analyzer.segment(t)) for t in comments)
        assert total_words == 3
        vec = extractor.extract(comments)
        assert np.all(np.isfinite(vec))
        assert vec[idx("sumCommentLength")] == float(total_words)
        assert vec[idx("averageCommentLength")] == pytest.approx(
            total_words / 3
        )
        # "haoping" is the only distinct word over the whole item.
        assert vec[idx("uniqueWordRatio")] == pytest.approx(1 / 3)


class TestBatch:
    def test_extract_many_shape(self, extractor):
        X = extractor.extract_many([["haoping"], ["zan", "mai"], []])
        assert X.shape == (3, N_FEATURES)

    def test_extract_many_empty(self, extractor):
        assert extractor.extract_many([]).shape == (0, N_FEATURES)

    def test_extract_many_rows_match_single(self, extractor):
        comments = ["haoping!", "zan"]
        X = extractor.extract_many([comments])
        np.testing.assert_array_equal(X[0], extractor.extract(comments))

    def test_extract_items_ducktyped(self, extractor, taobao_platform):
        items = taobao_platform.items[:5]
        X = extractor.extract_items(items)
        assert X.shape == (5, N_FEATURES)


class TestParallelBatch:
    def test_parallel_matrix_equals_serial(self, extractor, taobao_platform):
        lists = [i.comment_texts for i in taobao_platform.items[:24]]
        serial = extractor.extract_many(lists)
        parallel = extractor.extract_many(lists, n_workers=2)
        np.testing.assert_array_equal(serial, parallel)

    def test_single_worker_stays_serial(self, extractor):
        lists = [["haoping"], ["zan"]]
        np.testing.assert_array_equal(
            extractor.extract_many(lists, n_workers=1),
            extractor.extract_many(lists),
        )

    def test_more_workers_than_items(self, extractor):
        lists = [["haoping"], ["zan"]]
        X = extractor.extract_many(lists, n_workers=8)
        assert X.shape == (2, N_FEATURES)
        np.testing.assert_array_equal(X, extractor.extract_many(lists))


class TestDiscrimination:
    """The features must separate promo-heavy from organic items."""

    def test_fraud_features_shift(
        self, extractor, taobao_platform
    ):
        fraud = taobao_platform.fraud_items[:10]
        normal = [
            i for i in taobao_platform.normal_items if len(i.comments) >= 3
        ][:30]
        Xf = extractor.extract_items(fraud)
        Xn = extractor.extract_items(normal)
        # Paper claims: fraud items have more positive words, higher
        # sentiment, longer comments, lower unique-word ratio.
        assert Xf[:, idx("averagePositiveNumber")].mean() > (
            Xn[:, idx("averagePositiveNumber")].mean()
        )
        assert Xf[:, idx("averageSentiment")].mean() > (
            Xn[:, idx("averageSentiment")].mean()
        )
        assert Xf[:, idx("averageCommentLength")].mean() > (
            Xn[:, idx("averageCommentLength")].mean()
        )
        assert Xf[:, idx("uniqueWordRatio")].mean() < (
            Xn[:, idx("uniqueWordRatio")].mean()
        )
