"""Tests for repro.core.pipeline."""

import numpy as np
import pytest

from repro.core.pipeline import (
    EvaluationResult,
    audit_reported_items,
    evaluate_on_dataset,
    run_crawl,
)
from repro.datasets.builders import build_d1


class TestEvaluationResult:
    def test_rows_without_evidence(self):
        result = EvaluationResult(
            precision=0.9, recall=0.8, f1=0.85, n_reported=10, n_true_fraud=9
        )
        rows = result.rows()
        assert len(rows) == 1
        assert rows[0][0] == "the overall fraud items"

    def test_rows_with_evidence(self):
        result = EvaluationResult(
            precision=0.9,
            recall=0.8,
            f1=0.85,
            n_reported=10,
            n_true_fraud=9,
            evidenced_precision=0.85,
            evidenced_recall=0.9,
            evidenced_f1=0.87,
        )
        assert len(result.rows()) == 2


class TestEvaluateOnDataset:
    def test_metrics_in_range(self, trained_cats, language):
        d1 = build_d1(language, scale=0.0004, seed=77)
        result, report = evaluate_on_dataset(trained_cats, d1)
        assert 0.0 <= result.precision <= 1.0
        assert 0.0 <= result.recall <= 1.0
        assert result.n_true_fraud == d1.n_fraud
        assert report.is_fraud.shape == (len(d1),)

    def test_evidence_rows_when_present(self, trained_cats, language):
        d1 = build_d1(language, scale=0.0004, seed=77)
        result, __ = evaluate_on_dataset(trained_cats, d1)
        if d1.evidence_mask.any():
            assert result.evidenced_precision is not None


class TestRunCrawl:
    def test_crawl_produces_store(self, eplatform):
        store, crawler = run_crawl(eplatform, failure_rate=0.01, seed=4)
        assert store.summary()["items"] == len(eplatform.items)
        assert crawler.stats.requests > 0

    def test_max_items_cap(self, eplatform):
        store, __ = run_crawl(eplatform, max_items=7, seed=4)
        assert store.summary()["items"] == 7


class TestAudit:
    def test_audit_counts(self, trained_cats, eplatform):
        from repro.analysis.adapters import crawled_view

        crawled = crawled_view(eplatform)
        report = trained_cats.detect(crawled)
        if report.n_reported == 0:
            pytest.skip("nothing reported at this tiny scale")
        audit = audit_reported_items(
            eplatform, crawled, report, sample_size=50, seed=1
        )
        assert audit["n_audited"] <= 50
        assert 0.0 <= audit["audit_precision"] <= 1.0
        assert audit["n_confirmed"] <= audit["n_audited"]

    def test_audit_requires_reports(self, trained_cats, eplatform):
        from repro.analysis.adapters import crawled_view
        from repro.core.detector import DetectionReport

        crawled = crawled_view(eplatform)[:3]
        empty = DetectionReport(
            is_fraud=np.zeros(3, dtype=bool),
            fraud_probability=np.zeros(3),
            passed_filter=np.ones(3, dtype=bool),
        )
        with pytest.raises(ValueError):
            audit_reported_items(eplatform, crawled, empty)
