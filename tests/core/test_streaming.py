"""Tests for repro.core.streaming."""

import numpy as np
import pytest

from repro.analysis.adapters import comment_records_for_item
from repro.collector.records import CommentRecord
from repro.core.streaming import StreamingDetector


def make_records(texts, item_id=1):
    """Fabricate a comment feed for one item from raw texts."""
    return [
        CommentRecord(
            item_id=item_id,
            comment_id=i,
            content=text,
            nickname="user",
            user_exp_value=1,
            client="pc",
            date="2020-01-01",
        )
        for i, text in enumerate(texts)
    ]


@pytest.fixture()
def stream(trained_cats):
    return StreamingDetector(trained_cats, rescore_growth=1.0)


def records_for(platform, item):
    return comment_records_for_item(platform, item)


class TestValidation:
    def test_bad_growth(self, trained_cats):
        with pytest.raises(ValueError):
            StreamingDetector(trained_cats, rescore_growth=0.5)

    def test_bad_min_comments(self, trained_cats):
        with pytest.raises(ValueError):
            StreamingDetector(trained_cats, min_comments_to_score=0)

    def test_unknown_item_rescore(self, stream):
        with pytest.raises(KeyError):
            stream.force_rescore(42)


class TestIngestion:
    def test_tracks_items(self, stream, taobao_platform):
        item = taobao_platform.items[0]
        for record in records_for(taobao_platform, item)[:2]:
            stream.observe(record)
        assert stream.n_items_tracked == 1

    def test_no_score_below_min_comments(self, trained_cats, taobao_platform):
        stream = StreamingDetector(trained_cats, min_comments_to_score=5)
        item = next(
            i for i in taobao_platform.items if len(i.comments) >= 6
        )
        records = records_for(taobao_platform, item)
        for record in records[:4]:
            stream.observe(record)
        assert stream.probability(item.item_id) == 0.0

    def test_sales_updates_monotone(self, stream):
        stream.update_sales(7, 10)
        stream.update_sales(7, 5)
        assert stream._items[7].sales_volume == 10


class TestAlerting:
    def test_fraud_item_stream_alerts(self, trained_cats, taobao_platform):
        stream = StreamingDetector(trained_cats, rescore_growth=1.0)
        # Pick the fraud item with the most comments.
        fraud = max(
            taobao_platform.fraud_items, key=lambda i: len(i.comments)
        )
        stream.update_sales(fraud.item_id, fraud.sales_volume)
        alerts = stream.observe_many(records_for(taobao_platform, fraud))
        assert len(alerts) == 1
        assert alerts[0].item_id == fraud.item_id
        assert alerts[0].fraud_probability >= (
            trained_cats.config.detector.threshold
        )

    def test_alert_emitted_once(self, trained_cats, taobao_platform):
        stream = StreamingDetector(trained_cats, rescore_growth=1.0)
        fraud = max(
            taobao_platform.fraud_items, key=lambda i: len(i.comments)
        )
        stream.update_sales(fraud.item_id, fraud.sales_volume)
        records = records_for(taobao_platform, fraud)
        stream.observe_many(records)
        # Feed the same stream again: no duplicate alert.
        more = stream.observe_many(records)
        assert more == []
        assert len(stream.alerts) == 1

    def test_normal_items_stay_quiet(self, trained_cats, taobao_platform):
        stream = StreamingDetector(trained_cats, rescore_growth=1.0)
        quiet = [
            i
            for i in taobao_platform.normal_items
            if 3 <= len(i.comments) <= 10
        ][:20]
        for item in quiet:
            stream.update_sales(item.item_id, item.sales_volume)
            stream.observe_many(records_for(taobao_platform, item))
        flagged = set(stream.flagged_items())
        assert len(flagged & {i.item_id for i in quiet}) <= 2

    def test_rule_filter_blocks_low_sales(self, trained_cats, taobao_platform):
        """An item whose sales stay below the rule threshold never alerts,
        however fraudulent its comments look."""
        from repro.collector.records import CommentRecord

        fraud = max(
            taobao_platform.fraud_items, key=lambda i: len(i.comments)
        )
        records = records_for(taobao_platform, fraud)[:4]
        stream = StreamingDetector(trained_cats, rescore_growth=1.0)
        alerts = stream.observe_many(records)
        # 4 comments => inferred sales 4 < rule minimum 5.
        assert alerts == []


class TestRescorePolicy:
    def test_growth_factor_limits_scoring(self, trained_cats, taobao_platform):
        item = next(
            i for i in taobao_platform.items if len(i.comments) >= 8
        )
        records = records_for(taobao_platform, item)

        calls = []
        lazy = StreamingDetector(
            trained_cats, rescore_growth=2.0, min_comments_to_score=3
        )
        original = lazy._score

        def counting_score(item_id, state, trigger):
            calls.append(item_id)
            return original(item_id, state, trigger)

        lazy._score = counting_score
        lazy.observe_many(records[:8])
        # Scorings at sizes 3, 6 (>= 2x3); not on every comment.
        assert len(calls) <= 3

    def test_force_rescore_returns_probability(
        self, stream, taobao_platform
    ):
        item = next(
            i for i in taobao_platform.items if len(i.comments) >= 3
        )
        stream.observe_many(records_for(taobao_platform, item))
        p = stream.force_rescore(item.item_id)
        assert 0.0 <= p <= 1.0
        assert stream.probability(item.item_id) == p

    def test_force_rescore_respects_floor_on_empty_buffer(
        self, trained_cats
    ):
        """Regression: force_rescore used to score an empty buffer
        (bypassing min_comments_to_score) and could alert on it."""
        stream = StreamingDetector(trained_cats, min_comments_to_score=3)
        stream.update_sales(7, 100)  # tracked, zero comments buffered
        assert stream.force_rescore(7) == 0.0
        assert stream.alerts == []
        assert stream._items[7].last_scored_size == 0

    def test_force_rescore_below_floor_keeps_last_probability(
        self, trained_cats, taobao_platform
    ):
        stream = StreamingDetector(
            trained_cats, rescore_growth=1.0, min_comments_to_score=5
        )
        item = next(
            i for i in taobao_platform.items if len(i.comments) >= 3
        )
        stream.observe_many(records_for(taobao_platform, item)[:4])
        # 4 < 5: no scoring happened and forcing must not score either.
        assert stream.force_rescore(item.item_id) == 0.0
        assert stream._items[item.item_id].last_scored_size == 0

    def test_force_rescore_at_floor_scores(self, trained_cats, taobao_platform):
        stream = StreamingDetector(
            trained_cats, rescore_growth=2.0, min_comments_to_score=3
        )
        item = next(
            i for i in taobao_platform.items if len(i.comments) >= 3
        )
        stream.observe_many(records_for(taobao_platform, item)[:3])
        stream.force_rescore(item.item_id)
        assert stream._items[item.item_id].last_scored_size == 3

    def test_streaming_matches_batch_score(
        self, trained_cats, taobao_platform
    ):
        """After the full stream, the score equals batch detection."""
        item = max(
            taobao_platform.fraud_items, key=lambda i: len(i.comments)
        )
        stream = StreamingDetector(trained_cats, rescore_growth=1.0)
        stream.update_sales(item.item_id, item.sales_volume)
        stream.observe_many(records_for(taobao_platform, item))
        streamed = stream.force_rescore(item.item_id)
        features = trained_cats.extract_features([item])
        batch = float(
            trained_cats.detector.predict_proba(features)[0]
        )
        assert streamed == pytest.approx(batch)

    def test_incremental_features_bit_identical_to_batch(
        self, trained_cats, taobao_platform
    ):
        """The accumulator invariant end-to-end: after streaming, the
        per-item running sums yield exactly the batch feature vector."""
        item = next(
            i for i in taobao_platform.items if len(i.comments) >= 4
        )
        stream = StreamingDetector(trained_cats, rescore_growth=1.0)
        stream.observe_many(records_for(taobao_platform, item))
        state = stream._items[item.item_id]
        np.testing.assert_array_equal(
            state.accumulator.to_vector(),
            trained_cats.feature_extractor.extract(item.comment_texts),
        )


class TestIncrementalCost:
    def test_each_comment_segmented_once(
        self, trained_cats, taobao_platform, monkeypatch
    ):
        """Streaming a feed with rescoring on every comment must stay
        O(n) in segmentation calls; with the shared analysis cache the
        bound tightens to one call per *distinct* text.  The baseline
        replays what the pre-accumulator, pre-cache implementation did:
        re-extract the whole buffer at every rescore, uncached."""
        from repro.core.features import FeatureExtractor

        texts = []
        for item in taobao_platform.items:
            texts.extend(item.comment_texts)
            if len(texts) >= 60:
                break
        texts = texts[:60]

        analyzer = trained_cats.analyzer
        calls = {"n": 0}
        original = analyzer.segment

        def counting(text):
            calls["n"] += 1
            return original(text)

        monkeypatch.setattr(analyzer, "segment", counting)

        # Other tests share the session-scoped extractor; start from a
        # cold cache so the call count is deterministic.
        trained_cats.feature_extractor.clear_cache()
        stream = StreamingDetector(
            trained_cats, rescore_growth=1.0, min_comments_to_score=3
        )
        stream.observe_many(make_records(texts))
        incremental = calls["n"]
        assert incremental == len(set(texts))

        # O(n^2) baseline: re-extract the full buffer at each rescore
        # through an uncached extractor (the historical behaviour).
        calls["n"] = 0
        baseline_extractor = FeatureExtractor(analyzer, cache_size=0)
        for size in range(3, len(texts) + 1):
            baseline_extractor.extract(texts[:size])
        baseline = calls["n"]
        assert incremental < baseline


class TestDedupe:
    def test_duplicate_observe_is_ignored(self, stream, taobao_platform):
        item = next(
            i for i in taobao_platform.items if len(i.comments) >= 4
        )
        records = records_for(taobao_platform, item)
        stream.observe_many(records)
        before = stream._items[item.item_id].accumulator.to_vector().copy()
        stream.observe_many(records)  # crawler re-delivers the same page
        state = stream._items[item.item_id]
        assert len(state.comments) == len(records)
        np.testing.assert_array_equal(
            state.accumulator.to_vector(), before
        )

    def test_observed_and_duplicate_counters(self, stream, taobao_platform):
        item = next(
            i for i in taobao_platform.items if len(i.comments) >= 4
        )
        records = records_for(taobao_platform, item)
        stream.observe_many(records)
        stream.observe_many(records[:3])
        assert stream.n_observed == len(records) + 3
        assert stream.n_duplicates == 3

    def test_same_text_different_comment_id_is_not_a_duplicate(self, stream):
        records = make_records(["好评" for _ in range(4)])
        stream.observe_many(records)
        assert stream.n_duplicates == 0
        assert len(stream._items[1].comments) == 4


class TestEviction:
    def test_max_tracked_items_bounds_memory(self, trained_cats):
        stream = StreamingDetector(trained_cats, max_tracked_items=5)
        for item_id in range(20):
            stream.observe_many(make_records(["不错"], item_id=item_id))
        assert stream.n_items_tracked == 5
        assert stream.n_evicted == 15
        # The survivors are the five most recently seen.
        assert sorted(stream._items) == list(range(15, 20))

    def test_lru_touch_on_observe(self, trained_cats):
        stream = StreamingDetector(trained_cats, max_tracked_items=2)
        stream.observe_many(make_records(["不错"], item_id=1))
        stream.observe_many(make_records(["不错"], item_id=2))
        stream.observe_many(make_records(["很好"], item_id=1))  # touch 1
        stream.observe_many(make_records(["不错"], item_id=3))  # evicts 2
        assert sorted(stream._items) == [1, 3]

    def test_explicit_evict(self, stream, taobao_platform):
        item = taobao_platform.items[0]
        stream.observe_many(records_for(taobao_platform, item))
        assert stream.evict(item.item_id) is True
        assert not stream.is_tracked(item.item_id)
        assert stream.evict(item.item_id) is False  # already gone

    def test_bad_max_tracked_items(self, trained_cats):
        with pytest.raises(ValueError):
            StreamingDetector(trained_cats, max_tracked_items=0)

    def test_evicted_then_reseen_item_does_not_realert(
        self, trained_cats, taobao_platform
    ):
        """The alerted set must survive eviction: a fraud item whose
        buffers were dropped and that is then re-crawled from scratch
        stays alerted-once."""
        stream = StreamingDetector(trained_cats, rescore_growth=1.0)
        fraud = max(
            taobao_platform.fraud_items, key=lambda i: len(i.comments)
        )
        stream.update_sales(fraud.item_id, fraud.sales_volume)
        records = records_for(taobao_platform, fraud)
        alerts = stream.observe_many(records)
        assert len(alerts) == 1

        stream.evict(fraud.item_id)
        assert not stream.is_tracked(fraud.item_id)
        assert stream.has_alerted(fraud.item_id)

        # Re-crawl the item from zero: dedupe cannot save us (the seen
        # set was evicted too), but the alert ledger must.
        stream.update_sales(fraud.item_id, fraud.sales_volume)
        again = stream.observe_many(records)
        assert again == []
        assert len(stream.alerts) == 1

    def test_eviction_pressure_never_duplicates_alerts(
        self, trained_cats, taobao_platform
    ):
        """Alerts stay at-most-once per item even when a tiny LRU bound
        forces fraud items in and out of the tracked set repeatedly."""
        stream = StreamingDetector(
            trained_cats, rescore_growth=1.0, max_tracked_items=3
        )
        items = sorted(
            taobao_platform.items,
            key=lambda i: len(i.comments),
            reverse=True,
        )[:12]
        for item in items:
            stream.update_sales(item.item_id, item.sales_volume)
        feed = []
        per_item = [records_for(taobao_platform, item) for item in items]
        depth = max(len(records) for records in per_item)
        for level in range(depth):
            for records in per_item:
                if level < len(records):
                    feed.append(records[level])
        stream.observe_many(feed)
        stream.observe_many(feed)  # full replay under eviction pressure
        alerted = [alert.item_id for alert in stream.alerts]
        assert len(alerted) == len(set(alerted))


class TestModelStamp:
    """Checkpoints pin the model that wrote them (restore under a
    different model must fail loudly, not silently mis-score)."""

    HASH_A = "a" * 64
    HASH_B = "b" * 64

    def _state(self, stream, model):
        return stream.export_state(model=model)

    def test_stamp_recorded(self, stream):
        state = self._state(stream, {"version": 3, "content_hash": self.HASH_A})
        assert state["model"] == {
            "version": 3, "content_hash": self.HASH_A
        }

    def test_none_fields_omitted(self, stream):
        state = stream.export_state(
            model={"version": None, "content_hash": self.HASH_A, "source": None}
        )
        assert state["model"] == {"content_hash": self.HASH_A}

    def test_matching_hash_restores(self, stream, trained_cats):
        state = self._state(stream, {"content_hash": self.HASH_A})
        StreamingDetector(trained_cats).restore_state(
            state, expected_model={"content_hash": self.HASH_A}
        )

    def test_hash_mismatch_rejected(self, stream, trained_cats):
        state = self._state(
            stream, {"version": 1, "content_hash": self.HASH_A}
        )
        with pytest.raises(ValueError, match="cannot restore under"):
            StreamingDetector(trained_cats).restore_state(
                state,
                expected_model={"version": 2, "content_hash": self.HASH_B},
            )

    def test_hash_authoritative_over_version(self, stream, trained_cats):
        """Same registry version number in two different registries:
        hashes still disagree and must win."""
        state = self._state(
            stream, {"version": 1, "content_hash": self.HASH_A}
        )
        with pytest.raises(ValueError):
            StreamingDetector(trained_cats).restore_state(
                state,
                expected_model={"version": 1, "content_hash": self.HASH_B},
            )

    def test_version_fallback_when_no_hashes(self, stream, trained_cats):
        state = self._state(stream, {"version": 1})
        with pytest.raises(ValueError, match="version"):
            StreamingDetector(trained_cats).restore_state(
                state, expected_model={"version": 2}
            )
        StreamingDetector(trained_cats).restore_state(
            state, expected_model={"version": 1}
        )

    def test_uncomparable_stamp_rejected(self, stream, trained_cats):
        state = self._state(stream, {"version": 1})
        with pytest.raises(ValueError):
            StreamingDetector(trained_cats).restore_state(
                state, expected_model={"content_hash": self.HASH_A}
            )

    def test_unstamped_snapshot_accepted(self, stream, trained_cats):
        """Pre-mlops checkpoints carry no stamp and still restore."""
        state = stream.export_state()
        assert "model" not in state
        StreamingDetector(trained_cats).restore_state(
            state, expected_model={"content_hash": self.HASH_A}
        )

    def test_no_expectation_ignores_stamp(self, stream, trained_cats):
        state = self._state(stream, {"content_hash": self.HASH_A})
        StreamingDetector(trained_cats).restore_state(state)
