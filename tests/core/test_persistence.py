"""Tests for repro.core.persistence."""

import json

import numpy as np
import pytest

from repro.core.config import CATSConfig, DetectorConfig
from repro.core.persistence import (
    PersistenceError,
    load_cats,
    save_cats,
)
from repro.core.system import CATS


@pytest.fixture(scope="module")
def archive(tmp_path_factory, trained_cats):
    path = tmp_path_factory.mktemp("cats_archive")
    save_cats(trained_cats, path)
    return path


class TestSave:
    def test_files_written(self, archive):
        for name in (
            "manifest.json",
            "segmenter.json",
            "word2vec.npz",
            "word2vec_vocab.json",
            "sentiment.npz",
            "sentiment_vocab.json",
            "lexicon.json",
            "detector.json",
            "detector.npz",
        ):
            assert (archive / name).exists(), name

    def test_manifest_version(self, archive):
        manifest = json.loads((archive / "manifest.json").read_text())
        assert manifest["format_version"] == 1
        assert "config" in manifest

    def test_unfitted_detector_rejected(self, analyzer, tmp_path):
        cats = CATS(analyzer)
        with pytest.raises((PersistenceError, RuntimeError)):
            save_cats(cats, tmp_path / "x")

    def test_unsupported_classifier_rejected(
        self, analyzer, d0_small, tmp_path
    ):
        config = CATSConfig(detector=DetectorConfig(classifier="naive_bayes"))
        cats = CATS(analyzer, config=config)
        cats.fit(d0_small.items[:100], d0_small.labels[:100])
        with pytest.raises(PersistenceError):
            save_cats(cats, tmp_path / "x")


class TestLoad:
    def test_roundtrip_predictions_identical(
        self, archive, trained_cats, d0_small
    ):
        loaded = load_cats(archive)
        items = d0_small.items[:40]
        original = trained_cats.detect(items)
        restored = loaded.detect(items)
        np.testing.assert_array_equal(original.is_fraud, restored.is_fraud)
        np.testing.assert_allclose(
            original.fraud_probability, restored.fraud_probability
        )

    def test_roundtrip_lexicon(self, archive, trained_cats):
        loaded = load_cats(archive)
        assert loaded.analyzer.lexicon.positive == (
            trained_cats.analyzer.lexicon.positive
        )
        assert loaded.analyzer.lexicon.negative == (
            trained_cats.analyzer.lexicon.negative
        )

    def test_roundtrip_sentiment_scores(self, archive, trained_cats):
        loaded = load_cats(archive)
        text = "haopingzan!"
        assert loaded.analyzer.comment_sentiment(text) == pytest.approx(
            trained_cats.analyzer.comment_sentiment(text)
        )

    def test_roundtrip_word2vec_neighbors(self, archive, trained_cats):
        loaded = load_cats(archive)
        seed = next(iter(trained_cats.analyzer.lexicon.positive))
        if seed in trained_cats.analyzer.word2vec:
            a = trained_cats.analyzer.word2vec.most_similar(seed, k=5)
            b = loaded.analyzer.word2vec.most_similar(seed, k=5)
            assert [w for w, __ in a] == [w for w, __ in b]

    def test_roundtrip_config(self, archive, trained_cats):
        loaded = load_cats(archive)
        assert loaded.config == trained_cats.config

    def test_missing_archive(self, tmp_path):
        with pytest.raises(PersistenceError):
            load_cats(tmp_path / "nothing")

    def test_bad_version_rejected(self, archive, tmp_path):
        import shutil

        broken = tmp_path / "broken"
        shutil.copytree(archive, broken)
        manifest = json.loads((broken / "manifest.json").read_text())
        manifest["format_version"] = 99
        (broken / "manifest.json").write_text(json.dumps(manifest))
        with pytest.raises(PersistenceError):
            load_cats(broken)

    def test_corrupt_arrays_detected(self, archive, tmp_path):
        import shutil

        broken = tmp_path / "corrupt"
        shutil.copytree(archive, broken)
        vocab = json.loads((broken / "word2vec_vocab.json").read_text())
        vocab["words"] = vocab["words"][:3]
        vocab["counts"] = vocab["counts"][:3]
        (broken / "word2vec_vocab.json").write_text(json.dumps(vocab))
        with pytest.raises(PersistenceError):
            load_cats(broken)


class TestSvmRoundtrip:
    def test_svm_detector_roundtrip(self, analyzer, d0_small, tmp_path):
        config = CATSConfig(detector=DetectorConfig(classifier="svm"))
        cats = CATS(analyzer, config=config)
        cats.fit(d0_small.items[:200], d0_small.labels[:200])
        save_cats(cats, tmp_path / "svm")
        loaded = load_cats(tmp_path / "svm")
        items = d0_small.items[:20]
        np.testing.assert_allclose(
            cats.detect(items).fraud_probability,
            loaded.detect(items).fraud_probability,
        )


class TestArchiveIdentity:
    def test_manifest_carries_fingerprint_and_schema(self, archive):
        from repro.core.features import FEATURE_NAMES

        manifest = json.loads((archive / "manifest.json").read_text())
        assert len(manifest["content_hash"]) == 64
        assert len(manifest["analyzer_hash"]) == 64
        assert manifest["feature_schema"] == list(FEATURE_NAMES)

    def test_load_attaches_archive_info(self, archive):
        manifest = json.loads((archive / "manifest.json").read_text())
        loaded = load_cats(archive)
        assert loaded.archive_info["content_hash"] == (
            manifest["content_hash"]
        )
        assert loaded.archive_info["analyzer_hash"] == (
            manifest["analyzer_hash"]
        )
        assert loaded.archive_info["path"] == str(archive)

    def test_fingerprint_deterministic(self, archive):
        from repro.core.persistence import archive_fingerprint

        assert archive_fingerprint(archive) == archive_fingerprint(archive)

    def test_tampered_component_rejected(self, archive, tmp_path):
        import shutil

        broken = tmp_path / "tampered"
        shutil.copytree(archive, broken)
        lexicon = broken / "lexicon.json"
        lexicon.write_text(lexicon.read_text() + " ")
        with pytest.raises(PersistenceError, match="content hash"):
            load_cats(broken)

    def test_verify_hash_opt_out(self, archive, tmp_path):
        import shutil

        broken = tmp_path / "tampered_ok"
        shutil.copytree(archive, broken)
        lexicon = broken / "lexicon.json"
        lexicon.write_text(lexicon.read_text() + " ")
        assert load_cats(broken, verify_hash=False) is not None

    def test_foreign_feature_schema_rejected(self, archive, tmp_path):
        import shutil

        broken = tmp_path / "schema"
        shutil.copytree(archive, broken)
        manifest = json.loads((broken / "manifest.json").read_text())
        manifest["feature_schema"] = ["somethingElse"] + (
            manifest["feature_schema"][1:]
        )
        (broken / "manifest.json").write_text(json.dumps(manifest))
        with pytest.raises(PersistenceError, match="feature schema"):
            load_cats(broken)

    def test_legacy_manifest_loads_unchecked(self, archive, tmp_path):
        import shutil

        legacy = tmp_path / "legacy"
        shutil.copytree(archive, legacy)
        manifest = json.loads((legacy / "manifest.json").read_text())
        del manifest["content_hash"]
        del manifest["feature_schema"]
        (legacy / "manifest.json").write_text(json.dumps(manifest))
        loaded = load_cats(legacy)
        assert loaded.archive_info["content_hash"] is None

    def test_analyzer_hash_stable_across_detector_retrain(
        self, archive, analyzer, small_config, d0_small, tmp_path
    ):
        """Retraining only the detector keeps the analyzer hash (the
        shadow scorer keys feature-extractor sharing on it)."""
        retrained = CATS(analyzer, config=small_config)
        half = len(d0_small.items) // 2
        retrained.fit(d0_small.items[:half], d0_small.labels[:half])
        save_cats(retrained, tmp_path / "retrained")
        first = json.loads((archive / "manifest.json").read_text())
        second = json.loads(
            (tmp_path / "retrained" / "manifest.json").read_text()
        )
        assert first["analyzer_hash"] == second["analyzer_hash"]
        assert first["content_hash"] != second["content_hash"]
