"""Tests for repro.core.persistence."""

import json

import numpy as np
import pytest

from repro.core.config import CATSConfig, DetectorConfig
from repro.core.persistence import (
    PersistenceError,
    load_cats,
    save_cats,
)
from repro.core.system import CATS


@pytest.fixture(scope="module")
def archive(tmp_path_factory, trained_cats):
    path = tmp_path_factory.mktemp("cats_archive")
    save_cats(trained_cats, path)
    return path


class TestSave:
    def test_files_written(self, archive):
        for name in (
            "manifest.json",
            "segmenter.json",
            "word2vec.npz",
            "word2vec_vocab.json",
            "sentiment.npz",
            "sentiment_vocab.json",
            "lexicon.json",
            "detector.json",
            "detector.npz",
        ):
            assert (archive / name).exists(), name

    def test_manifest_version(self, archive):
        manifest = json.loads((archive / "manifest.json").read_text())
        assert manifest["format_version"] == 1
        assert "config" in manifest

    def test_unfitted_detector_rejected(self, analyzer, tmp_path):
        cats = CATS(analyzer)
        with pytest.raises((PersistenceError, RuntimeError)):
            save_cats(cats, tmp_path / "x")

    def test_unsupported_classifier_rejected(
        self, analyzer, d0_small, tmp_path
    ):
        config = CATSConfig(detector=DetectorConfig(classifier="naive_bayes"))
        cats = CATS(analyzer, config=config)
        cats.fit(d0_small.items[:100], d0_small.labels[:100])
        with pytest.raises(PersistenceError):
            save_cats(cats, tmp_path / "x")


class TestLoad:
    def test_roundtrip_predictions_identical(
        self, archive, trained_cats, d0_small
    ):
        loaded = load_cats(archive)
        items = d0_small.items[:40]
        original = trained_cats.detect(items)
        restored = loaded.detect(items)
        np.testing.assert_array_equal(original.is_fraud, restored.is_fraud)
        np.testing.assert_allclose(
            original.fraud_probability, restored.fraud_probability
        )

    def test_roundtrip_lexicon(self, archive, trained_cats):
        loaded = load_cats(archive)
        assert loaded.analyzer.lexicon.positive == (
            trained_cats.analyzer.lexicon.positive
        )
        assert loaded.analyzer.lexicon.negative == (
            trained_cats.analyzer.lexicon.negative
        )

    def test_roundtrip_sentiment_scores(self, archive, trained_cats):
        loaded = load_cats(archive)
        text = "haopingzan!"
        assert loaded.analyzer.comment_sentiment(text) == pytest.approx(
            trained_cats.analyzer.comment_sentiment(text)
        )

    def test_roundtrip_word2vec_neighbors(self, archive, trained_cats):
        loaded = load_cats(archive)
        seed = next(iter(trained_cats.analyzer.lexicon.positive))
        if seed in trained_cats.analyzer.word2vec:
            a = trained_cats.analyzer.word2vec.most_similar(seed, k=5)
            b = loaded.analyzer.word2vec.most_similar(seed, k=5)
            assert [w for w, __ in a] == [w for w, __ in b]

    def test_roundtrip_config(self, archive, trained_cats):
        loaded = load_cats(archive)
        assert loaded.config == trained_cats.config

    def test_missing_archive(self, tmp_path):
        with pytest.raises(PersistenceError):
            load_cats(tmp_path / "nothing")

    def test_bad_version_rejected(self, archive, tmp_path):
        import shutil

        broken = tmp_path / "broken"
        shutil.copytree(archive, broken)
        manifest = json.loads((broken / "manifest.json").read_text())
        manifest["format_version"] = 99
        (broken / "manifest.json").write_text(json.dumps(manifest))
        with pytest.raises(PersistenceError):
            load_cats(broken)

    def test_corrupt_arrays_detected(self, archive, tmp_path):
        import shutil

        broken = tmp_path / "corrupt"
        shutil.copytree(archive, broken)
        vocab = json.loads((broken / "word2vec_vocab.json").read_text())
        vocab["words"] = vocab["words"][:3]
        vocab["counts"] = vocab["counts"][:3]
        (broken / "word2vec_vocab.json").write_text(json.dumps(vocab))
        with pytest.raises(PersistenceError):
            load_cats(broken)


class TestSvmRoundtrip:
    def test_svm_detector_roundtrip(self, analyzer, d0_small, tmp_path):
        config = CATSConfig(detector=DetectorConfig(classifier="svm"))
        cats = CATS(analyzer, config=config)
        cats.fit(d0_small.items[:200], d0_small.labels[:200])
        save_cats(cats, tmp_path / "svm")
        loaded = load_cats(tmp_path / "svm")
        items = d0_small.items[:20]
        np.testing.assert_allclose(
            cats.detect(items).fraud_probability,
            loaded.detect(items).fraud_probability,
        )
