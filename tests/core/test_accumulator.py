"""Tests for the incremental feature accumulators (repro.core.features).

The load-bearing invariant: folding comments through an
:class:`ItemAccumulator` in order produces a vector *exactly* equal
(bit-identical, not approximately) to batch ``FeatureExtractor.extract``
over the same list.  The streaming detector's claim that incremental
scores equal batch scores rests on it.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.features import (
    FEATURE_NAMES,
    N_FEATURES,
    FeatureExtractor,
    ItemAccumulator,
)


@pytest.fixture(scope="module")
def extractor(analyzer):
    return FeatureExtractor(analyzer)


@pytest.fixture(scope="module")
def comment_alphabet(language):
    """Characters of real dictionary words plus punctuation and an OOV
    letter, so random texts exercise known-word, OOV and punctuation
    segmentation paths alike."""
    chars: set[str] = set()
    for word in list(language.dictionary_weights())[:40]:
        chars.update(word)
    return sorted(chars) + ["!", ",", ".", "?"]


def comment_lists(alphabet):
    return st.lists(
        st.text(alphabet=alphabet, min_size=0, max_size=24),
        min_size=0,
        max_size=8,
    )


class TestCommentStats:
    def test_single_analysis_matches_extract(self, extractor):
        text = "haoping! zan"
        accumulator = extractor.make_accumulator()
        accumulator.add(extractor.comment_stats(text))
        np.testing.assert_array_equal(
            accumulator.to_vector(), extractor.extract([text])
        )

    def test_bigram_ratio_term_guard(self, extractor):
        # A single-word comment has no bigrams and a zero ratio term.
        stats = extractor.comment_stats("haoping")
        assert stats.n_positive_bigrams == 0
        assert stats.bigram_ratio_term == 0.0


class TestItemAccumulator:
    def test_empty_is_zero_vector(self):
        np.testing.assert_array_equal(
            ItemAccumulator().to_vector(), np.zeros(N_FEATURES)
        )

    def test_remove_from_empty_raises(self, extractor):
        with pytest.raises(ValueError):
            ItemAccumulator().remove(extractor.comment_stats("haoping"))

    def test_remove_inverts_integer_counts(self, extractor):
        accumulator = extractor.make_accumulator()
        stats = [extractor.comment_stats(t) for t in ("haoping!", "zan zan")]
        for s in stats:
            accumulator.add(s)
        accumulator.remove(stats[1])
        assert accumulator.n_comments == 1
        assert accumulator.total_words == stats[0].n_words
        assert accumulator.n_unique_words == len(stats[0].word_counts)

    def test_unique_words_survive_partial_remove(self, extractor):
        # Both comments contain the same word: removing one occurrence
        # must keep the word in the multiset (set semantics would not).
        accumulator = extractor.make_accumulator()
        first = extractor.comment_stats("haoping")
        second = extractor.comment_stats("haoping")
        accumulator.add(first)
        accumulator.add(second)
        before = accumulator.n_unique_words
        accumulator.remove(second)
        assert accumulator.n_unique_words == before


class TestIncrementalEqualsBatch:
    """The PR's acceptance property: exact equality on random inputs."""

    @settings(max_examples=40, deadline=None)
    @given(data=st.data())
    def test_fold_in_order_is_bit_identical(
        self, data, extractor, comment_alphabet
    ):
        comments = data.draw(comment_lists(comment_alphabet))
        accumulator = extractor.make_accumulator()
        for text in comments:
            accumulator.add(extractor.comment_stats(text))
        np.testing.assert_array_equal(
            accumulator.to_vector(), extractor.extract(comments)
        )

    @settings(max_examples=25, deadline=None)
    @given(data=st.data())
    def test_chunked_folding_with_interleaved_reads(
        self, data, extractor, comment_alphabet
    ):
        """Partial to_vector() snapshots neither mutate state nor drift:
        every prefix vector equals batch extraction of that prefix."""
        comments = data.draw(comment_lists(comment_alphabet))
        accumulator = extractor.make_accumulator()
        folded = 0
        while folded < len(comments):
            step = data.draw(
                st.integers(min_value=1, max_value=len(comments) - folded)
            )
            for text in comments[folded : folded + step]:
                accumulator.add(extractor.comment_stats(text))
            folded += step
            np.testing.assert_array_equal(
                accumulator.to_vector(),
                extractor.extract(comments[:folded]),
            )

    @settings(max_examples=15, deadline=None)
    @given(data=st.data())
    def test_vector_is_finite_and_named(
        self, data, extractor, comment_alphabet
    ):
        comments = data.draw(comment_lists(comment_alphabet))
        vec = extractor.extract(comments)
        assert vec.shape == (len(FEATURE_NAMES),)
        assert np.all(np.isfinite(vec))
