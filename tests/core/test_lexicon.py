"""Tests for repro.core.lexicon."""

import pytest

from repro.core.config import LexiconConfig
from repro.core.lexicon import SentimentLexicon, build_lexicon_pair


class TestSentimentLexicon:
    def test_overlap_rejected(self):
        with pytest.raises(ValueError):
            SentimentLexicon(
                positive=frozenset({"a", "b"}), negative=frozenset({"b"})
            )

    def test_sizes(self):
        lex = SentimentLexicon(
            positive=frozenset({"a", "b"}), negative=frozenset({"c"})
        )
        assert lex.sizes == (2, 1)

    def test_polarity(self):
        lex = SentimentLexicon(
            positive=frozenset({"a"}), negative=frozenset({"b"})
        )
        assert lex.polarity("a") == 1
        assert lex.polarity("b") == -1
        assert lex.polarity("c") == 0


class TestBuildLexiconPair:
    def test_built_from_analyzer_model(self, analyzer, language):
        """The trained analyzer's lexicon is pure and contains variants."""
        lexicon = analyzer.lexicon
        n_pos, n_neg = lexicon.sizes
        assert n_pos > 20
        assert n_neg > 20
        # Purity: the majority of the expanded positive set is truly
        # positive in the generating language.
        purity = len(lexicon.positive & language.positive_set) / n_pos
        assert purity > 0.55

    def test_discovers_typo_variants(self, analyzer, language):
        """The paper's headline lexicon finding (Table I homographs)."""
        found = {
            w
            for w in analyzer.lexicon.positive | analyzer.lexicon.negative
            if w in language.variant_map
        }
        assert found, "expansion should surface typo variants"

    def test_no_overlap_guaranteed(self, analyzer):
        assert not analyzer.lexicon.positive & analyzer.lexicon.negative

    def test_max_size_respected(self, analyzer, small_config):
        n_pos, n_neg = analyzer.lexicon.sizes
        assert n_pos <= small_config.lexicon.max_size
        assert n_neg <= small_config.lexicon.max_size

    def test_seeds_present(self, analyzer, language):
        for seed in language.positive_seeds[:3]:
            assert seed in analyzer.lexicon.positive

    def test_unknown_seed_handling(self, analyzer):
        from repro.semantics.similarity import expand_lexicon

        with pytest.raises(ValueError):
            expand_lexicon(analyzer.word2vec, ["notarealword"])

    def test_contested_words_assigned_to_one_side(self, analyzer, language):
        # Rebuild with permissive thresholds to force contested words.
        lexicon = build_lexicon_pair(
            analyzer.word2vec,
            language.positive_seeds[:3],
            language.negative_seeds[:3],
            LexiconConfig(k_neighbors=10, max_size=60, min_similarity=0.1),
        )
        assert not lexicon.positive & lexicon.negative
