"""Tests for repro.core.extended_features."""

import numpy as np
import pytest

from repro.core.extended_features import (
    EXTENDED_FEATURE_NAMES,
    ExtendedFeatureExtractor,
    N_EXTENDED_FEATURES,
    date_burstiness,
)
from repro.core.features import FEATURE_NAMES, N_FEATURES


class TestDateBurstiness:
    def test_empty_is_zero(self):
        assert date_burstiness([]) == 0.0

    def test_single_date_is_zero(self):
        assert date_burstiness(["2017-09-01 10:00:00"]) == 0.0

    def test_all_in_one_burst(self):
        dates = [f"2017-09-0{d} 10:00:00" for d in range(1, 6)]
        assert date_burstiness(dates) == 1.0

    def test_spread_out_low(self):
        dates = [f"2017-{m:02d}-01 10:00:00" for m in range(1, 13)]
        assert date_burstiness(dates) <= 2 / 12

    def test_half_bursty(self):
        burst = [f"2017-09-01 0{h}:00:00" for h in range(5)]
        spread = [f"2017-{m:02d}-15 10:00:00" for m in (1, 3, 5, 7, 11)]
        value = date_burstiness(burst + spread)
        assert 0.4 <= value <= 0.7

    def test_unparseable_dates_ignored(self):
        assert date_burstiness(["garbage", "also-bad"]) == 0.0

    def test_in_unit_interval(self):
        dates = ["2017-09-01", "2017-09-02", "2017-12-01"]
        assert 0.0 <= date_burstiness(dates) <= 1.0


class TestExtendedExtractor:
    @pytest.fixture(scope="class")
    def extractor(self, analyzer):
        return ExtendedFeatureExtractor(analyzer)

    def test_fifteen_features(self):
        assert N_EXTENDED_FEATURES == 15
        assert EXTENDED_FEATURE_NAMES[:N_FEATURES] == FEATURE_NAMES

    def test_superset_of_base(self, extractor):
        comments = ["haoping!", "zanmai"]
        base = super(ExtendedFeatureExtractor, extractor).extract(comments)
        extended = extractor.extract_extended(comments)
        np.testing.assert_array_equal(extended[:N_FEATURES], base)

    def test_empty_item(self, extractor):
        vec = extractor.extract_extended([])
        assert vec.shape == (N_EXTENDED_FEATURES,)
        np.testing.assert_array_equal(vec, 0.0)

    def test_max_length_feature(self, extractor, analyzer):
        comments = ["haoping", "haopingzanhaoping"]
        vec = extractor.extract_extended(comments)
        idx = EXTENDED_FEATURE_NAMES.index("maxCommentLength")
        longest = max(len(analyzer.segment(c)) for c in comments)
        assert vec[idx] == longest

    def test_burstiness_without_dates_is_zero(self, extractor):
        vec = extractor.extract_extended(["haoping"], dates=None)
        idx = EXTENDED_FEATURE_NAMES.index("dateBurstiness")
        assert vec[idx] == 0.0

    def test_extract_items_uses_comment_dates(
        self, extractor, taobao_platform
    ):
        items = taobao_platform.fraud_items[:3]
        X = extractor.extract_items(items)
        assert X.shape == (3, N_EXTENDED_FEATURES)
        idx = EXTENDED_FEATURE_NAMES.index("dateBurstiness")
        assert np.all(X[:, idx] >= 0.0)

    def test_fraud_items_burstier(self, extractor, taobao_platform):
        """Campaign injections are temporally bursty by construction."""
        fraud = taobao_platform.fraud_items[:15]
        normal = [
            i for i in taobao_platform.normal_items if len(i.comments) >= 5
        ][:30]
        idx = EXTENDED_FEATURE_NAMES.index("dateBurstiness")
        Xf = extractor.extract_items(fraud)
        Xn = extractor.extract_items(normal)
        assert Xf[:, idx].mean() > Xn[:, idx].mean()

    def test_positive_fraction_bounds(self, extractor, taobao_platform):
        items = taobao_platform.items[:10]
        X = extractor.extract_items(items)
        idx = EXTENDED_FEATURE_NAMES.index("positiveCommentFraction")
        assert np.all((X[:, idx] >= 0.0) & (X[:, idx] <= 1.0))

    def test_duplicate_ratio_bounds(self, extractor, taobao_platform):
        items = taobao_platform.items[:10]
        X = extractor.extract_items(items)
        idx = EXTENDED_FEATURE_NAMES.index("duplicateWordRatio")
        assert np.all((X[:, idx] >= 0.0) & (X[:, idx] < 1.0))

    def test_empty_batch(self, extractor):
        assert extractor.extract_items([]).shape == (0, N_EXTENDED_FEATURES)
