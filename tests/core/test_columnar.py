"""Tests for repro.core.columnar (ColumnarCommentStore).

The properties that matter:

* **round trip** -- a store built from the extractor's interned stats,
  saved and memory-mapped back, must produce feature matrices
  bit-identical (``np.array_equal``) to live analysis, for arbitrary
  comment mixes (empty, punctuation-only, OOV-only) and across
  interner-growing appends;
* **no re-segmentation** -- rehydration must not touch the segmenter
  (counter-verified);
* **committed prefix** -- SIGKILL at any moment of an append/save loop
  must leave a loadable store whose contents are exactly some committed
  prefix of the appended rows.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
from dataclasses import dataclass
from pathlib import Path

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.columnar import (
    ColumnarCommentStore,
    ColumnarStoreError,
    append_comments,
    gather_ranges,
)
from repro.core.features import FeatureExtractor
from repro.core.interning import TokenInterner

REPO_SRC = Path(__file__).resolve().parents[2] / "src"


@dataclass
class Rec:
    """Duck-typed comment record (the store only reads these three)."""

    item_id: int
    comment_id: int
    content: str


def _oov_char(language) -> str:
    alphabet = set("".join(language.dictionary_weights()))
    for candidate in "qxz0123456789":
        if candidate not in alphabet:
            return candidate
    raise AssertionError("no OOV character available")


@pytest.fixture(scope="module")
def words(language) -> list[str]:
    return sorted(language.dictionary_weights())[:60]


def build_store(analyzer, items: dict[int, list[str]], directory=None):
    """(store, extractor) holding *items* (item_id -> comment texts)."""
    extractor = FeatureExtractor(analyzer, cache_size=0)
    store = ColumnarCommentStore(analyzer.interner)
    comment_id = 0
    for item_id, texts in items.items():
        records = []
        for text in texts:
            records.append(Rec(item_id, comment_id, text))
            comment_id += 1
        append_comments(store, extractor, records)
    if directory is not None:
        store.save(directory)
    return store, extractor


def live_matrix(extractor, items: dict[int, list[str]]) -> np.ndarray:
    return np.vstack(
        [extractor.extract(texts) for texts in items.values()]
    )


class TestGatherRanges:
    @given(data=st.data())
    @settings(max_examples=50, deadline=None)
    def test_matches_concatenated_slices(self, data):
        values = np.arange(data.draw(st.integers(1, 200)))
        n = len(values)
        spans = data.draw(
            st.lists(
                st.tuples(st.integers(0, n), st.integers(0, n)).map(
                    lambda p: (min(p), max(p))
                ),
                min_size=0,
                max_size=12,
            )
        )
        starts = np.array([s for s, _ in spans], dtype=np.int64)
        ends = np.array([e for _, e in spans], dtype=np.int64)
        expected = np.concatenate(
            [values[s:e] for s, e in spans] or [values[:0]]
        )
        assert np.array_equal(gather_ranges(values, starts, ends), expected)


class TestRoundTrip:
    @given(data=st.data())
    @settings(max_examples=25, deadline=None)
    def test_feature_matrix_bit_identical_after_reload(
        self, data, analyzer, language, words, tmp_path_factory
    ):
        oov = _oov_char(language)
        comment = st.lists(
            st.sampled_from(words + [",", "!", oov, oov * 3]),
            min_size=0,
            max_size=8,
        ).map("".join)
        items = {
            item_id: data.draw(
                st.lists(comment, min_size=0, max_size=5)
            )
            for item_id in range(1, data.draw(st.integers(1, 5)) + 1)
        }
        directory = tmp_path_factory.mktemp("store")
        store, extractor = build_store(analyzer, items, directory)
        expected = live_matrix(extractor, items)
        assert np.array_equal(
            store.feature_matrix(items.keys()), expected
        )
        reloaded = ColumnarCommentStore.load(directory, mode="mmap")
        assert np.array_equal(
            reloaded.feature_matrix(items.keys()), expected
        )

    def test_empty_and_oov_only_comments(
        self, analyzer, language, tmp_path
    ):
        oov = _oov_char(language)
        items = {7: ["", oov * 4, ""], 9: [], 11: [oov, oov * 2]}
        store, extractor = build_store(analyzer, items, tmp_path)
        expected = live_matrix(extractor, items)
        reloaded = ColumnarCommentStore.load(tmp_path)
        assert np.array_equal(
            reloaded.feature_matrix(items.keys()), expected
        )

    def test_interner_growth_across_appends(
        self, analyzer, language, words, tmp_path
    ):
        # OOV chars segment to single-char tokens, so a char the
        # interner has never seen interns a fresh id.
        alphabet = set("".join(language.dictionary_weights()))
        novel = [
            c
            for c in "0123456789"
            if c not in alphabet and c not in analyzer.interner
        ][:2]
        assert len(novel) == 2, "no unseen OOV characters left"
        extractor = FeatureExtractor(analyzer, cache_size=0)
        store = ColumnarCommentStore(analyzer.interner)
        first = [Rec(1, 0, words[0] + words[1]), Rec(1, 1, words[2])]
        append_comments(store, extractor, first)
        store.save(tmp_path)
        vocab_before = len(analyzer.interner)
        second = [
            Rec(2, 2, novel[0] + novel[1]),
            Rec(2, 3, novel[1] + words[0]),
        ]
        append_comments(store, extractor, second)
        assert len(analyzer.interner) > vocab_before
        generation = store.save()
        assert generation == 2
        items = {
            1: [r.content for r in first],
            2: [r.content for r in second],
        }
        reloaded = ColumnarCommentStore.load(tmp_path)
        assert np.array_equal(
            reloaded.feature_matrix([1, 2]),
            live_matrix(extractor, items),
        )

    def test_rehydrate_stats_equal_fresh_analysis(
        self, analyzer, words, tmp_path
    ):
        texts = [words[0] + words[1] + ",", words[2], ""]
        items = {3: texts}
        store, extractor = build_store(analyzer, items, tmp_path)
        reloaded = ColumnarCommentStore.load(tmp_path)
        rehydrated = reloaded.rehydrate_stats(range(len(texts)))
        assert rehydrated == extractor.comment_stats_many(texts)

    def test_rehydration_skips_resegmentation(
        self, analyzer, words, tmp_path
    ):
        """Acceptance criterion: restart rehydration must not re-run
        segmentation -- the analyzer's counter must not move."""
        items = {1: [words[0] + words[1], words[2]], 2: [words[3]]}
        store, extractor = build_store(analyzer, items, tmp_path)
        reloaded = ColumnarCommentStore.load(tmp_path)
        before = analyzer.n_segmentations
        matrix = reloaded.feature_matrix([1, 2])
        stats = reloaded.rehydrate_stats(range(3))
        assert analyzer.n_segmentations == before
        assert matrix.shape[0] == 2 and len(stats) == 3
        # ... while the live path does segment (counter sanity).
        extractor.comment_stats_scalar(words[0])
        assert analyzer.n_segmentations == before + 1


class TestGuards:
    def test_mmap_store_rejects_append_and_save(
        self, analyzer, words, tmp_path
    ):
        store, extractor = build_store(
            analyzer, {1: [words[0]]}, tmp_path
        )
        reloaded = ColumnarCommentStore.load(tmp_path)
        stats = extractor.comment_stats_many([words[1]])
        with pytest.raises(ColumnarStoreError, match="read-only"):
            reloaded.append([Rec(1, 99, words[1])], stats)
        with pytest.raises(ColumnarStoreError, match="read-only"):
            reloaded.save(tmp_path)

    def test_frozen_interner_rejects_new_words(
        self, analyzer, words, tmp_path
    ):
        build_store(analyzer, {1: [words[0]]}, tmp_path)
        frozen = ColumnarCommentStore.load(tmp_path).interner
        assert frozen.frozen
        assert frozen.intern(words[0]) == analyzer.interner.intern(
            words[0]
        )
        with pytest.raises(KeyError, match="frozen"):
            frozen.intern("never-seen-before-word")

    def test_scalar_path_stats_rejected(self, analyzer, words):
        extractor = FeatureExtractor(analyzer, cache_size=0)
        store = ColumnarCommentStore(analyzer.interner)
        stats = [extractor.comment_stats_scalar(words[0])]
        with pytest.raises(ColumnarStoreError, match="token_ids"):
            store.append([Rec(1, 0, words[0])], stats)

    def test_length_mismatch_rejected(self, analyzer, words):
        extractor = FeatureExtractor(analyzer, cache_size=0)
        store = ColumnarCommentStore(analyzer.interner)
        stats = extractor.comment_stats_many([words[0]])
        with pytest.raises(ColumnarStoreError, match="records"):
            store.append([Rec(1, 0, words[0]), Rec(1, 1, words[1])], stats)
        with pytest.raises(ColumnarStoreError, match="timestamps"):
            store.append([Rec(1, 0, words[0])], stats, timestamps=[1.0, 2.0])

    def test_adopt_words_mismatch(self, words):
        interner = TokenInterner(frozenset(), frozenset())
        interner.intern("already-here")
        with pytest.raises(ValueError, match="attach the store"):
            interner.adopt_words([words[0], words[1]])

    def test_attach_replays_stored_vocabulary(
        self, analyzer, words, tmp_path
    ):
        from types import SimpleNamespace

        store, extractor = build_store(
            analyzer, {1: [words[0] + words[1]]}, tmp_path
        )
        expected = store.feature_matrix([1])
        fresh = SimpleNamespace(
            interner=TokenInterner(frozenset(), frozenset())
        )
        attached = ColumnarCommentStore.attach(tmp_path, fresh)
        assert attached.mode == "memory"
        assert attached.interner is fresh.interner
        assert fresh.interner.words[: len(analyzer.interner)] == (
            analyzer.interner.words
        )
        assert np.array_equal(attached.feature_matrix([1]), expected)

    def test_analyzer_hash_mismatch_rejected(self, analyzer, words, tmp_path):
        extractor = FeatureExtractor(analyzer, cache_size=0)
        store = ColumnarCommentStore(
            analyzer.interner, analyzer_hash="aaaaaaaaaaaaaaaa"
        )
        stats = extractor.comment_stats_many([words[0]])
        store.append([Rec(1, 0, words[0])], stats)
        store.save(tmp_path)
        with pytest.raises(ColumnarStoreError, match="analyzer"):
            ColumnarCommentStore.load(
                tmp_path, expected_analyzer_hash="bbbbbbbbbbbbbbbb"
            )
        # Matching (or absent) expectation loads fine.
        ColumnarCommentStore.load(
            tmp_path, expected_analyzer_hash="aaaaaaaaaaaaaaaa"
        )

    def test_missing_manifest_rejected(self, tmp_path):
        with pytest.raises(ColumnarStoreError, match="store.json"):
            ColumnarCommentStore.load(tmp_path)

    def test_truncated_column_rejected(self, analyzer, words, tmp_path):
        build_store(analyzer, {1: [words[0], words[1]]}, tmp_path)
        short = np.load(tmp_path / "sentiment.npy")[:-1]
        np.save(tmp_path / "sentiment.npy", short)
        with pytest.raises(ColumnarStoreError):
            ColumnarCommentStore.load(tmp_path)


#: Child process for the SIGKILL test.  Appends deterministic synthetic
#: batches and saves after every one, printing the generation; ``check``
#: mode regenerates the same batches and verifies the committed prefix.
CRASH_SCRIPT = r"""
import sys
from collections import Counter

import numpy as np

from repro.core.columnar import ColumnarCommentStore
from repro.core.features import CommentStats
from repro.core.interning import TokenInterner

BATCH = 32
MAX_BATCHES = 400


class Rec:
    def __init__(self, item_id, comment_id, content):
        self.item_id = item_id
        self.comment_id = comment_id
        self.content = content


def make_batch(index, interner):
    rng = np.random.default_rng(index)
    records, stats, stamps = [], [], []
    for j in range(BATCH):
        n = int(rng.integers(0, 6))
        tokens = [f"w{int(k)}" for k in rng.integers(0, 50, n)]
        ids = interner.encode(tokens)
        stats.append(
            CommentStats(
                n_words=n,
                word_counts=Counter(tokens),
                n_positive_distinct=int(rng.integers(0, 3)),
                pos_neg_delta=int(rng.integers(0, 3)),
                sentiment=float(rng.random()),
                entropy=float(rng.random()),
                n_punctuation=int(rng.integers(0, 4)),
                punctuation_ratio=float(rng.random()),
                n_positive_bigrams=int(rng.integers(0, 3)),
                bigram_ratio_term=float(rng.random()),
                token_ids=ids,
            )
        )
        records.append(Rec(index, index * BATCH + j, "x" * n))
        stamps.append(float(index))
    return records, stats, stamps


def run(directory):
    interner = TokenInterner(frozenset(["w0"]), frozenset(["w1"]))
    store = ColumnarCommentStore(interner)
    for index in range(MAX_BATCHES):
        records, stats, stamps = make_batch(index, interner)
        store.append(records, stats, timestamps=stamps)
        generation = store.save(directory)
        print(f"gen {generation}", flush=True)


def check(directory):
    loaded = ColumnarCommentStore.load(directory)
    n = loaded.n_comments
    assert n % BATCH == 0, f"committed {n} rows, not a batch multiple"
    assert n > 0, "no committed batches survived"
    reference = TokenInterner(frozenset(["w0"]), frozenset(["w1"]))
    tokens, columns = [], {name: [] for name in (
        "item_id", "comment_id", "n_chars", "sentiment", "timestamp"
    )}
    for index in range(n // BATCH):
        records, stats, stamps = make_batch(index, reference)
        for record, stat, stamp in zip(records, stats, stamps):
            tokens.extend(stat.token_ids.tolist())
            columns["item_id"].append(record.item_id)
            columns["comment_id"].append(record.comment_id)
            columns["n_chars"].append(len(record.content))
            columns["sentiment"].append(stat.sentiment)
            columns["timestamp"].append(stamp)
    assert loaded.tokens().tolist() == tokens
    for name, expected in columns.items():
        assert loaded.column(name).tolist() == expected, name
    assert loaded.interner.words == reference.words[: len(
        loaded.interner
    )]
    print(f"prefix ok: {n} rows", flush=True)


if __name__ == "__main__":
    mode, directory = sys.argv[1], sys.argv[2]
    run(directory) if mode == "run" else check(directory)
"""


class TestCrashSafety:
    def test_sigkill_leaves_loadable_committed_prefix(self, tmp_path):
        script = tmp_path / "crash_child.py"
        script.write_text(CRASH_SCRIPT, encoding="utf-8")
        store_dir = tmp_path / "store"
        env = dict(os.environ, PYTHONPATH=str(REPO_SRC))
        child = subprocess.Popen(
            [sys.executable, str(script), "run", str(store_dir)],
            stdout=subprocess.PIPE,
            text=True,
            env=env,
        )
        try:
            # Let a few generations commit, then kill without warning --
            # the child is likely mid-append or mid-save.
            for line in child.stdout:
                if line.startswith("gen 5"):
                    break
            child.kill()
            child.wait(timeout=30)
        finally:
            if child.poll() is None:  # pragma: no cover - cleanup
                child.kill()
        assert child.returncode in (-signal.SIGKILL, 0)
        verify = subprocess.run(
            [sys.executable, str(script), "check", str(store_dir)],
            capture_output=True,
            text=True,
            env=env,
        )
        assert verify.returncode == 0, verify.stdout + verify.stderr
        assert "prefix ok" in verify.stdout
