"""Tests for the shared analysis cache and its extractor integration."""

import pytest

from repro.core.analysis_cache import AnalysisCache, CacheInfo
from repro.core.features import FeatureExtractor
from repro.core.lexicon import SentimentLexicon


class TestAnalysisCache:
    def test_maxsize_validation(self):
        with pytest.raises(ValueError):
            AnalysisCache(0)
        with pytest.raises(ValueError):
            AnalysisCache(-3)

    def test_miss_then_hit(self):
        cache = AnalysisCache(4)
        assert cache.get("a") is None
        cache.put("a", 1)
        assert cache.get("a") == 1
        info = cache.info()
        assert (info.hits, info.misses, info.evictions) == (1, 1, 0)
        assert info.size == 1
        assert info.maxsize == 4

    def test_contains_and_len(self):
        cache = AnalysisCache(4)
        cache.put("a", 1)
        assert "a" in cache
        assert "b" not in cache
        assert len(cache) == 1

    def test_lru_eviction_order(self):
        cache = AnalysisCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("c", 3)  # evicts "a"
        assert "a" not in cache
        assert "b" in cache and "c" in cache
        assert cache.info().evictions == 1

    def test_hit_refreshes_recency(self):
        cache = AnalysisCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")  # "b" is now least recent
        cache.put("c", 3)
        assert "a" in cache
        assert "b" not in cache

    def test_put_existing_updates_value(self):
        cache = AnalysisCache(2)
        cache.put("a", 1)
        cache.put("a", 2)
        assert cache.get("a") == 2
        assert len(cache) == 1
        assert cache.info().evictions == 0

    def test_clear_keeps_counters(self):
        cache = AnalysisCache(2)
        cache.put("a", 1)
        cache.get("a")
        cache.get("zz")
        cache.clear()
        assert len(cache) == 0
        info = cache.info()
        assert (info.hits, info.misses) == (1, 1)

    def test_hit_rate(self):
        assert CacheInfo(0, 0, 0, 0, 8).hit_rate == 0.0
        assert CacheInfo(3, 1, 0, 2, 8).hit_rate == 0.75


class TestExtractorCacheIntegration:
    def test_cache_disabled(self, analyzer):
        extractor = FeatureExtractor(analyzer, cache_size=0)
        assert extractor.cache_info() is None
        extractor.clear_cache()  # no-op, must not raise
        text = sorted(analyzer.lexicon.positive)[0]
        assert extractor.comment_stats(text) == extractor.comment_stats(
            text
        )

    def test_repeat_analysis_hits_cache(self, analyzer):
        extractor = FeatureExtractor(analyzer)
        text = "".join(sorted(analyzer.lexicon.positive)[:3])
        first = extractor.comment_stats(text)
        second = extractor.comment_stats(text)
        assert first is second
        info = extractor.cache_info()
        assert info.hits == 1
        assert info.misses >= 1

    def test_cached_text_is_not_resegmented(self, analyzer):
        extractor = FeatureExtractor(analyzer)
        text = "".join(sorted(analyzer.lexicon.positive)[:3])
        calls = 0
        original = analyzer.segment

        def counting(t):
            nonlocal calls
            calls += 1
            return original(t)

        analyzer.segment = counting
        try:
            extractor.comment_stats(text)
            extractor.comment_stats(text)
            extractor.comment_stats_many([text, text, text])
        finally:
            # Remove the instance attribute rather than assigning the
            # bound method back: an assigned bound method would shadow
            # the class method forever (and smuggle a stale analyzer
            # copy into any later clone_spec pickle).
            del analyzer.segment
        assert calls == 1

    def test_eviction_and_refill_bit_identical(self, analyzer, language):
        """Re-analyzing an evicted text reproduces the same stats."""
        from repro.ecommerce.language import PROMO_STYLE

        import numpy as np

        rng = np.random.default_rng(3)
        texts = [
            language.generate_comment(PROMO_STYLE, rng)[0]
            for __ in range(20)
        ]
        extractor = FeatureExtractor(analyzer, cache_size=4)
        first = extractor.comment_stats_many(texts)
        # Every early text has been evicted by now (cache holds 4).
        assert extractor.cache_info().evictions > 0
        second = extractor.comment_stats_many(texts)
        for a, b in zip(first, second):
            assert a == b
        assert np.array_equal(
            extractor.extract(texts), extractor.extract(texts)
        )

    def test_lexicon_replacement_invalidates_cache(self, analyzer):
        extractor = FeatureExtractor(analyzer)
        text = "".join(sorted(analyzer.lexicon.positive)[:3])
        before = extractor.comment_stats(text)
        assert extractor.cache_info().size == 1
        original = analyzer.lexicon
        try:
            # Content-identical but a *different object*: the analyzer
            # must hand out a fresh interner and the extractor must
            # drop every cached entry.
            analyzer.lexicon = SentimentLexicon(
                positive=original.positive, negative=original.negative
            )
            after = extractor.comment_stats(text)
            assert after is not before
            assert after == before  # same content -> same stats
            assert extractor.cache_info().size == 1
        finally:
            analyzer.lexicon = original

    def test_interner_identity_changes_on_replacement(self, analyzer):
        first = analyzer.interner
        assert analyzer.interner is first  # stable while resources are
        original = analyzer.lexicon
        try:
            analyzer.lexicon = SentimentLexicon(
                positive=original.positive, negative=original.negative
            )
            assert analyzer.interner is not first
        finally:
            analyzer.lexicon = original
