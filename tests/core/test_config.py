"""Tests for repro.core.config."""

import dataclasses

import pytest

from repro.core.config import (
    CATSConfig,
    DetectorConfig,
    LexiconConfig,
    RuleConfig,
    Word2VecConfig,
)


class TestDefaults:
    def test_paper_defaults(self):
        config = CATSConfig()
        assert config.lexicon.max_size == 200
        assert config.rules.min_sales_volume == 5
        assert config.detector.classifier == "xgboost"

    def test_frozen(self):
        config = CATSConfig()
        with pytest.raises(dataclasses.FrozenInstanceError):
            config.detector = DetectorConfig()

    def test_sub_configs_frozen(self):
        with pytest.raises(dataclasses.FrozenInstanceError):
            LexiconConfig().max_size = 1

    def test_composable(self):
        config = CATSConfig(
            word2vec=Word2VecConfig(dim=16),
            rules=RuleConfig(min_sales_volume=10),
        )
        assert config.word2vec.dim == 16
        assert config.rules.min_sales_volume == 10
        # Untouched sections keep defaults.
        assert config.detector.classifier == "xgboost"
