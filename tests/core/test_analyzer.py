"""Tests for repro.core.analyzer."""

import pytest

from repro.text.segmentation import ViterbiSegmenter


class TestTrainedAnalyzer:
    def test_components_present(self, analyzer):
        assert isinstance(analyzer.segmenter, ViterbiSegmenter)
        assert analyzer.word2vec is not None
        assert analyzer.sentiment is not None
        assert analyzer.lexicon.sizes[0] > 0

    def test_segment_passthrough(self, analyzer):
        words = analyzer.segment("haoping,zan!")
        assert words == ["haoping", "zan"]

    def test_comment_sentiment_range(self, analyzer, language, rng):
        from repro.ecommerce.language import PROMO_STYLE

        text, __ = language.generate_comment(PROMO_STYLE, rng)
        score = analyzer.comment_sentiment(text)
        assert 0.0 <= score <= 1.0

    def test_promo_scores_higher_than_complaint(self, analyzer, language, rng):
        from repro.ecommerce.language import (
            ORGANIC_NEGATIVE_STYLE,
            PROMO_STYLE,
        )

        import numpy as np

        promo = [
            analyzer.comment_sentiment(
                language.generate_comment(PROMO_STYLE, rng)[0]
            )
            for __ in range(20)
        ]
        complaint = [
            analyzer.comment_sentiment(
                language.generate_comment(ORGANIC_NEGATIVE_STYLE, rng)[0]
            )
            for __ in range(20)
        ]
        assert np.mean(promo) > np.mean(complaint)

    def test_word2vec_vocabulary_from_corpus(self, analyzer, language):
        # High-frequency positive seeds must be in the trained vocab.
        assert language.positive_seeds[0] in analyzer.word2vec


class TestTrainValidation:
    def test_train_rejects_empty_sentiment_corpus(self, language):
        from repro.core.analyzer import SemanticAnalyzer

        with pytest.raises(ValueError):
            SemanticAnalyzer.train(
                comment_corpus=["haoping"],
                dictionary=language.dictionary_weights(),
                sentiment_documents=[],
                sentiment_labels=[],
                positive_seeds=language.positive_seeds[:2],
                negative_seeds=language.negative_seeds[:2],
            )
