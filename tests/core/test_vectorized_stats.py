"""Bit-identity of the vectorized analysis path against the scalar
reference.

The interned fast path (``CommentStats.from_ids`` + batched NB
sentiment) must produce *exactly* the values of the original
string-based implementation, which is kept as
``FeatureExtractor.comment_stats_scalar``.  Every comparison here is
``==`` / ``np.array_equal`` -- no tolerances.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.features import FeatureExtractor, ItemAccumulator


def _oov_char(language) -> str:
    """A word-character no dictionary word contains."""
    alphabet = set("".join(language.dictionary_weights()))
    for candidate in "qxz0123456789":
        if candidate not in alphabet:
            return candidate
    raise AssertionError("no OOV character available")


@pytest.fixture(scope="module")
def words(language) -> list[str]:
    return sorted(language.dictionary_weights())[:80]


def assert_stats_equal(actual, expected):
    """Field-exact CommentStats comparison with readable failures."""
    assert actual.n_words == expected.n_words
    assert actual.word_counts == expected.word_counts
    assert actual.n_positive_distinct == expected.n_positive_distinct
    assert actual.pos_neg_delta == expected.pos_neg_delta
    assert actual.sentiment == expected.sentiment
    assert actual.entropy == expected.entropy
    assert actual.n_punctuation == expected.n_punctuation
    assert actual.punctuation_ratio == expected.punctuation_ratio
    assert actual.n_positive_bigrams == expected.n_positive_bigrams
    assert actual.bigram_ratio_term == expected.bigram_ratio_term


class TestCommentStatsBitIdentity:
    @given(data=st.data())
    @settings(max_examples=60, deadline=None)
    def test_rendered_comments(self, data, analyzer, words):
        pieces = data.draw(
            st.lists(
                st.sampled_from(words + [",", "!", "."]),
                min_size=0,
                max_size=12,
            )
        )
        text = "".join(pieces)
        extractor = FeatureExtractor(analyzer, cache_size=0)
        assert_stats_equal(
            extractor.comment_stats(text),
            extractor.comment_stats_scalar(text),
        )

    @given(data=st.data())
    @settings(max_examples=40, deadline=None)
    def test_oov_heavy_comments(self, data, analyzer, words, language):
        oov = _oov_char(language)
        pieces = data.draw(
            st.lists(
                st.sampled_from(words[:10] + [oov, oov * 2, ","]),
                min_size=1,
                max_size=10,
            )
        )
        text = "".join(pieces)
        extractor = FeatureExtractor(analyzer, cache_size=0)
        assert_stats_equal(
            extractor.comment_stats(text),
            extractor.comment_stats_scalar(text),
        )

    def test_empty_comment(self, analyzer):
        extractor = FeatureExtractor(analyzer, cache_size=0)
        assert_stats_equal(
            extractor.comment_stats(""),
            extractor.comment_stats_scalar(""),
        )

    def test_punctuation_only_comment(self, analyzer):
        extractor = FeatureExtractor(analyzer, cache_size=0)
        assert_stats_equal(
            extractor.comment_stats(",.!?"),
            extractor.comment_stats_scalar(",.!?"),
        )

    def test_oov_only_comment(self, analyzer, language):
        text = _oov_char(language) * 3
        extractor = FeatureExtractor(analyzer, cache_size=0)
        assert_stats_equal(
            extractor.comment_stats(text),
            extractor.comment_stats_scalar(text),
        )

    def test_single_word_comment(self, analyzer, words):
        extractor = FeatureExtractor(analyzer, cache_size=0)
        stats = extractor.comment_stats(words[0])
        assert_stats_equal(
            stats, extractor.comment_stats_scalar(words[0])
        )
        # A single-word comment has zero entropy; the vectorized kernel
        # must not leak a negative zero.
        assert str(stats.entropy) == "0.0"

    def test_positive_lexicon_comment(self, analyzer):
        # Guarantee non-trivial positive counts / bigrams.
        positive = sorted(analyzer.lexicon.positive)[:4]
        text = "".join(positive) * 2
        extractor = FeatureExtractor(analyzer, cache_size=0)
        stats = extractor.comment_stats(text)
        assert_stats_equal(stats, extractor.comment_stats_scalar(text))
        assert stats.n_positive_distinct > 0


class TestBatchBitIdentity:
    def _texts(self, language, n=30):
        from repro.ecommerce.language import PROMO_STYLE

        rng = np.random.default_rng(99)
        return [
            language.generate_comment(PROMO_STYLE, rng)[0]
            for __ in range(n)
        ]

    def test_comment_stats_many_matches_scalar(self, analyzer, language):
        texts = self._texts(language)
        texts = texts + texts[:5]  # in-batch duplicates
        extractor = FeatureExtractor(analyzer)
        batch = extractor.comment_stats_many(texts)
        assert len(batch) == len(texts)
        for text, stats in zip(texts, batch):
            assert_stats_equal(stats, extractor.comment_stats_scalar(text))

    def test_duplicates_share_the_cached_object(self, analyzer, language):
        texts = self._texts(language, n=5)
        extractor = FeatureExtractor(analyzer)
        batch = extractor.comment_stats_many(texts + texts)
        for first, second in zip(batch[:5], batch[5:]):
            assert first is second

    def test_extract_bit_identical_to_scalar_accumulation(
        self, analyzer, language
    ):
        texts = self._texts(language)
        extractor = FeatureExtractor(analyzer)
        accumulator = ItemAccumulator()
        for text in texts:
            accumulator.add(extractor.comment_stats_scalar(text))
        assert np.array_equal(
            extractor.extract(texts), accumulator.to_vector()
        )

    def test_extract_many_bit_identical(self, analyzer, language):
        lists = [self._texts(language, n=4) for __ in range(6)]
        extractor = FeatureExtractor(analyzer)
        matrix = extractor.extract_many(lists)
        for row, comments in zip(matrix, lists):
            accumulator = ItemAccumulator()
            for text in comments:
                accumulator.add(extractor.comment_stats_scalar(text))
            assert np.array_equal(row, accumulator.to_vector())


class TestBatchedSentimentBitIdentity:
    def test_score_many_equals_score(self, analyzer, language):
        from repro.ecommerce.language import PROMO_STYLE

        rng = np.random.default_rng(17)
        docs = [
            analyzer.segment(language.generate_comment(PROMO_STYLE, rng)[0])
            for __ in range(20)
        ]
        docs.append([])  # empty comment scores the class prior
        sentiment = analyzer.sentiment
        batch = sentiment.score_many(docs)
        assert batch == [sentiment.score(doc) for doc in docs]

    def test_score_ids_equals_score(self, analyzer, language, words):
        interner = analyzer.interner
        sentiment = analyzer.sentiment
        doc = words[:6] + ["notaword"] + words[:2]
        ids = interner.encode(doc)
        assert sentiment.score_ids(
            interner.sentiment_ids[ids]
        ) == sentiment.score(doc)

    def test_score_ids_many_equals_score_ids(self, analyzer, words):
        interner = analyzer.interner
        sentiment = analyzer.sentiment
        docs = [
            interner.sentiment_ids[interner.encode(words[i : i + 4])]
            for i in range(0, 12, 2)
        ]
        docs.append(np.array([], dtype=np.int32))
        batch = sentiment.score_ids_many(docs)
        assert [float(p) for p in batch] == [
            sentiment.score_ids(doc) for doc in docs
        ]
