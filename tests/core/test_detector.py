"""Tests for repro.core.detector."""

import numpy as np
import pytest

from repro.core.config import DetectorConfig, RuleConfig
from repro.core.detector import CLASSIFIER_FACTORIES, Detector
from repro.core.features import FEATURE_NAMES, N_FEATURES


class FakeItem:
    def __init__(self, sales_volume=10, n_comments=3):
        self.sales_volume = sales_volume
        self.comment_texts = ["t"] * n_comments


def make_training_data(rng, n=300):
    """Synthetic 11-feature data with a simple fraud signal."""
    X = rng.normal(size=(n, N_FEATURES)) + 2.0
    y = (X[:, 0] + X[:, 3] > 4.0).astype(int)
    # Ensure positive evidence columns are positive so rules pass.
    X[:, FEATURE_NAMES.index("averagePositiveNumber")] = np.abs(
        X[:, FEATURE_NAMES.index("averagePositiveNumber")]
    ) + 0.1
    return X, y


class TestConfig:
    def test_unknown_classifier(self):
        with pytest.raises(ValueError):
            Detector(DetectorConfig(classifier="lightgbm"))

    def test_bad_threshold(self):
        with pytest.raises(ValueError):
            Detector(DetectorConfig(threshold=1.0))

    def test_all_six_candidates_available(self):
        assert set(CLASSIFIER_FACTORIES) == {
            "xgboost",
            "svm",
            "adaboost",
            "neural_network",
            "decision_tree",
            "naive_bayes",
        }


class TestFit:
    @pytest.mark.parametrize("name", sorted(CLASSIFIER_FACTORIES))
    def test_each_classifier_trains(self, name, rng):
        X, y = make_training_data(rng)
        detector = Detector(DetectorConfig(classifier=name)).fit(X, y)
        proba = detector.predict_proba(X[:10])
        assert proba.shape == (10,)
        assert np.all((proba >= 0) & (proba <= 1))

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            Detector().predict_proba(np.zeros((1, N_FEATURES)))

    def test_scaler_applied_for_svm(self, rng):
        X, y = make_training_data(rng)
        detector = Detector(DetectorConfig(classifier="svm")).fit(X, y)
        assert detector._scaler is not None

    def test_no_scaler_for_trees(self, rng):
        X, y = make_training_data(rng)
        detector = Detector(DetectorConfig(classifier="xgboost")).fit(X, y)
        assert detector._scaler is None


class TestDetect:
    def test_filtered_items_not_reported(self, rng):
        X, y = make_training_data(rng)
        detector = Detector(
            DetectorConfig(classifier="xgboost", threshold=0.5)
        ).fit(X, y)
        items = [FakeItem(sales_volume=1), FakeItem(sales_volume=10)]
        feats = X[:2].copy()
        report = detector.detect(items, feats)
        assert not report.passed_filter[0]
        assert not report.is_fraud[0]
        assert report.fraud_probability[0] == 0.0

    def test_report_fields_aligned(self, rng):
        X, y = make_training_data(rng)
        detector = Detector().fit(X, y)
        items = [FakeItem() for __ in range(6)]
        report = detector.detect(items, X[:6])
        assert report.is_fraud.shape == (6,)
        assert report.fraud_probability.shape == (6,)
        assert report.passed_filter.shape == (6,)

    def test_threshold_monotone(self, rng):
        X, y = make_training_data(rng)
        low = Detector(DetectorConfig(threshold=0.2)).fit(X, y)
        high = Detector(DetectorConfig(threshold=0.9)).fit(X, y)
        items = [FakeItem() for __ in range(60)]
        n_low = low.detect(items, X[:60]).n_reported
        n_high = high.detect(items, X[:60]).n_reported
        assert n_high <= n_low

    def test_reported_indices_sorted_by_probability(self, rng):
        X, y = make_training_data(rng)
        detector = Detector(DetectorConfig(threshold=0.3)).fit(X, y)
        items = [FakeItem() for __ in range(50)]
        report = detector.detect(items, X[:50])
        order = report.reported_indices()
        probs = report.fraud_probability[order]
        assert np.all(np.diff(probs) <= 1e-12)

    def test_filter_report_included(self, rng):
        X, y = make_training_data(rng)
        detector = Detector().fit(X, y)
        items = [FakeItem(sales_volume=1), FakeItem()]
        report = detector.detect(items, X[:2])
        assert report.filter_report["filtered_low_sales"] == 1


class TestImportances:
    def test_gbdt_importances(self, rng):
        X, y = make_training_data(rng)
        detector = Detector(DetectorConfig(classifier="xgboost")).fit(X, y)
        imp = detector.feature_importances()
        assert imp is not None
        assert imp.shape == (N_FEATURES,)

    def test_tree_importances(self, rng):
        X, y = make_training_data(rng)
        detector = Detector(DetectorConfig(classifier="decision_tree")).fit(
            X, y
        )
        assert detector.feature_importances() is not None

    def test_svm_has_no_split_importances(self, rng):
        X, y = make_training_data(rng)
        detector = Detector(DetectorConfig(classifier="svm")).fit(X, y)
        assert detector.feature_importances() is None
