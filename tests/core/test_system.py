"""Tests for repro.core.system (the CATS facade)."""

import numpy as np
import pytest

from repro.core.config import CATSConfig, DetectorConfig
from repro.core.system import CATS
from repro.ml.metrics import precision_recall_f1


class TestFit:
    def test_fit_length_mismatch(self, analyzer, d0_small):
        cats = CATS(analyzer)
        with pytest.raises(ValueError):
            cats.fit(d0_small.items[:5], d0_small.labels[:4])

    def test_fit_features_path(self, analyzer, d0_small, trained_cats):
        X = trained_cats.extract_features(d0_small.items[:50])
        cats = CATS(analyzer)
        cats.fit_features(X, d0_small.labels[:50])
        report = cats.detect_with_features(d0_small.items[:50], X)
        assert report.is_fraud.shape == (50,)


class TestDetect:
    def test_detect_report_shape(self, trained_cats, d0_small):
        report = trained_cats.detect(d0_small.items[:30])
        assert report.is_fraud.shape == (30,)
        assert report.fraud_probability.shape == (30,)

    def test_detects_frauds_in_training_distribution(
        self, trained_cats, taobao_platform
    ):
        items = taobao_platform.items
        labels = np.array([1 if i.is_fraud else 0 for i in items])
        report = trained_cats.detect(items)
        precision, recall, __ = precision_recall_f1(
            labels, report.is_fraud.astype(int)
        )
        # Small-scale smoke thresholds; the benchmark harness measures
        # the paper-scale numbers.
        assert recall > 0.5
        assert precision > 0.3

    def test_cross_platform_detection(self, trained_cats, eplatform):
        """Trained on Taobao D0, applied to E-platform items directly."""
        from repro.analysis.adapters import crawled_view

        crawled = crawled_view(eplatform)
        report = trained_cats.detect(crawled)
        labels = np.array(
            [
                1 if eplatform.item_by_id(ci.item_id).is_fraud else 0
                for ci in crawled
            ]
        )
        if labels.sum() > 0:
            __, recall, __f = precision_recall_f1(
                labels, report.is_fraud.astype(int)
            )
            assert recall > 0.4

    def test_feature_importances_available(self, trained_cats):
        imp = trained_cats.feature_importances()
        assert imp is not None
        assert imp.sum() > 0

    def test_alternative_classifier_config(self, analyzer, d0_small):
        config = CATSConfig(
            detector=DetectorConfig(classifier="decision_tree")
        )
        cats = CATS(analyzer, config=config)
        cats.fit(d0_small.items[:200], d0_small.labels[:200])
        report = cats.detect(d0_small.items[:20])
        assert report.is_fraud.shape == (20,)
