"""Tests for the atomic file writers in repro.core.persistence.

All of them stage into a same-directory temp file, fsync and rename --
a reader never sees a half-written file, and no ``.tmp`` droppings
survive a successful write.
"""

from __future__ import annotations

import json

import numpy as np

from repro.core.persistence import (
    write_jsonl_atomic,
    write_npy_atomic,
)


class TestWriteNpyAtomic:
    def test_round_trip_and_mmap(self, tmp_path):
        path = tmp_path / "col.npy"
        array = np.arange(1000, dtype=np.int32)
        write_npy_atomic(path, array)
        assert np.array_equal(np.load(path), array)
        mapped = np.load(path, mmap_mode="r")
        assert isinstance(mapped, np.memmap)
        assert np.array_equal(mapped, array)

    def test_overwrite_leaves_no_droppings(self, tmp_path):
        path = tmp_path / "col.npy"
        write_npy_atomic(path, np.zeros(4))
        write_npy_atomic(path, np.ones(8))
        assert np.array_equal(np.load(path), np.ones(8))
        assert [p.name for p in tmp_path.iterdir()] == ["col.npy"]


class TestWriteJsonlAtomic:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "rows.jsonl"
        rows = [{"a": 1}, {"b": [2, 3]}, {"c": "x"}]
        write_jsonl_atomic(path, iter(rows))
        lines = path.read_text(encoding="utf-8").splitlines()
        assert [json.loads(line) for line in lines] == rows

    def test_empty_and_overwrite(self, tmp_path):
        path = tmp_path / "rows.jsonl"
        write_jsonl_atomic(path, [{"a": 1}] * 5)
        write_jsonl_atomic(path, [])
        assert path.read_text(encoding="utf-8") == ""
        assert [p.name for p in tmp_path.iterdir()] == ["rows.jsonl"]


class TestDatasetStoreSave:
    def test_save_uses_atomic_writers(self, tmp_path):
        from repro.collector.records import (
            CommentRecord,
            ItemRecord,
            ShopRecord,
        )
        from repro.collector.storage import DatasetStore

        store = DatasetStore(
            shops=[ShopRecord(1, "u1", "s1")],
            items=[ItemRecord(10, 1, "a", 5.0, 12)],
            comments=[
                CommentRecord(
                    10, 100, "hi", "a***b", 200, "web", "2017-09-10"
                )
            ],
        )
        store.save(tmp_path / "data")
        names = sorted(p.name for p in (tmp_path / "data").iterdir())
        assert names == ["comments.jsonl", "items.jsonl", "shops.jsonl"]
        reloaded = DatasetStore.load(tmp_path / "data")
        assert reloaded.summary() == store.summary()
        assert reloaded.comments == store.comments
