"""Tests for repro.core.rules."""

import numpy as np
import pytest

from repro.core.config import RuleConfig
from repro.core.features import FEATURE_NAMES, N_FEATURES
from repro.core.rules import RuleFilter


class FakeItem:
    def __init__(self, sales_volume, n_comments):
        self.sales_volume = sales_volume
        self.comment_texts = ["text"] * n_comments


def features(positive=1.0, ngrams=1.0):
    vec = np.zeros(N_FEATURES)
    vec[FEATURE_NAMES.index("averagePositiveNumber")] = positive
    vec[FEATURE_NAMES.index("averageNgramNumber")] = ngrams
    return vec


class TestPasses:
    def test_healthy_item_passes(self):
        rule = RuleFilter()
        assert rule.passes(10, 3, features())

    def test_low_sales_filtered(self):
        rule = RuleFilter()
        assert not rule.passes(4, 3, features())

    def test_sales_boundary_inclusive(self):
        rule = RuleFilter(RuleConfig(min_sales_volume=5))
        assert rule.passes(5, 3, features())

    def test_no_comments_filtered(self):
        rule = RuleFilter()
        assert not rule.passes(10, 0, features())

    def test_no_positive_evidence_filtered(self):
        rule = RuleFilter()
        assert not rule.passes(10, 3, features(positive=0.0, ngrams=0.0))

    def test_positive_words_alone_suffice(self):
        rule = RuleFilter()
        assert rule.passes(10, 3, features(positive=1.0, ngrams=0.0))

    def test_positive_ngrams_alone_suffice(self):
        rule = RuleFilter()
        assert rule.passes(10, 3, features(positive=0.0, ngrams=1.0))

    def test_evidence_rule_can_be_disabled(self):
        rule = RuleFilter(RuleConfig(require_positive_evidence=False))
        assert rule.passes(10, 3, features(positive=0.0, ngrams=0.0))


class TestMask:
    def test_mask_alignment(self):
        rule = RuleFilter()
        items = [FakeItem(10, 3), FakeItem(1, 3), FakeItem(10, 3)]
        X = np.vstack([features(), features(), features(0.0, 0.0)])
        mask = rule.mask(items, X)
        assert mask.tolist() == [True, False, False]

    def test_mask_length_mismatch(self):
        rule = RuleFilter()
        with pytest.raises(ValueError):
            rule.mask([FakeItem(10, 1)], np.zeros((2, N_FEATURES)))


class TestEvaluate:
    def items_and_features(self):
        items = [
            FakeItem(1, 3),     # low sales
            FakeItem(10, 0),    # no comments
            FakeItem(10, 2),    # no positive evidence (features zeroed)
            FakeItem(10, 2),    # passes
        ]
        X = np.vstack(
            [features(), features(), features(0.0, 0.0), features()]
        )
        return items, X

    def test_single_pass_mask_and_report(self):
        rule = RuleFilter()
        items, X = self.items_and_features()
        mask, report = rule.evaluate(items, X)
        assert mask.tolist() == [False, False, False, True]
        assert report["passed"] == 1
        assert sum(report.values()) == len(items)

    def test_wrappers_agree_with_evaluate(self):
        rule = RuleFilter()
        items, X = self.items_and_features()
        mask, report = rule.evaluate(items, X)
        np.testing.assert_array_equal(mask, rule.mask(items, X))
        assert report == rule.filter_report(items, X)

    def test_mask_matches_passed_count(self):
        rule = RuleFilter()
        items, X = self.items_and_features()
        mask, report = rule.evaluate(items, X)
        assert int(mask.sum()) == report["passed"]

    def test_length_mismatch_raises(self):
        rule = RuleFilter()
        with pytest.raises(ValueError):
            rule.evaluate([FakeItem(10, 1)], np.zeros((2, N_FEATURES)))


class TestFilterReport:
    def test_counts_partition_items(self):
        rule = RuleFilter()
        items = [
            FakeItem(1, 3),     # low sales
            FakeItem(10, 0),    # no comments
            FakeItem(10, 2),    # no positive evidence (features zeroed)
            FakeItem(10, 2),    # passes
        ]
        X = np.vstack(
            [features(), features(), features(0.0, 0.0), features()]
        )
        report = rule.filter_report(items, X)
        assert report["filtered_low_sales"] == 1
        assert report["filtered_no_comments"] == 1
        assert report["filtered_no_positive_evidence"] == 1
        assert report["passed"] == 1
        assert sum(report.values()) == len(items)
