"""Tests for repro.core.parallel_analysis.

The contract under test: ``analyze_many`` on any worker count and any
chunk size produces a store **bit-identical** to the serial
``append_comments`` run -- same token arena, offsets, stat columns,
feature matrix (``np.array_equal``), and a byte-identical interner
snapshot -- and a worker dying mid-run fails loudly with *nothing*
appended, never a partial store.

Parity is property-tested with the in-process ``pool="inline"``
executor, which runs the exact worker code (spec-cloned analyzer,
cumulative local interner, shard emission) minus the process spawn --
chunk scheduling, vocabulary growth across chunk boundaries, and the
deterministic merge are all real.  Real process pools get a smoke test
and the killed-worker test.
"""

from __future__ import annotations

import multiprocessing
import os
from dataclasses import dataclass

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.analyzer import SemanticAnalyzer
from repro.core.columnar import (
    ColumnarCommentStore,
    ColumnarStoreError,
    append_comments,
)
from repro.core.features import FeatureExtractor
from repro.core.interning import TokenInterner, merge_interners, remap_ids
from repro.core import parallel_analysis
from repro.core.parallel_analysis import (
    ENGINE_STATS,
    ParallelAnalysisError,
    analyze_many,
    analyze_stats_many,
)

#: Non-timestamp columns that must match bit for bit between serial and
#: parallel stores (timestamps are wall clock at append).
COMPARED_COLUMNS = (
    "item_id",
    "comment_id",
    "n_chars",
    "n_positive_distinct",
    "pos_neg_delta",
    "n_punctuation",
    "n_positive_bigrams",
    "sentiment",
    "entropy",
    "punctuation_ratio",
    "bigram_ratio_term",
)


@dataclass
class Rec:
    """Duck-typed comment record (the engine reads these three)."""

    item_id: int
    comment_id: int
    content: str


@pytest.fixture(scope="module")
def spec(analyzer) -> bytes:
    """One pickled analyzer spec; every run clones a private analyzer
    from it so serial and parallel runs start from identical state."""
    return analyzer.clone_spec()


@pytest.fixture(scope="module")
def words(language) -> list[str]:
    return sorted(language.dictionary_weights())[:60]


@pytest.fixture(scope="module")
def oov(language) -> str:
    alphabet = set("".join(language.dictionary_weights()))
    for candidate in "qxz0123456789":
        if candidate not in alphabet:
            return candidate
    raise AssertionError("no OOV character available")


def fresh(spec: bytes, cache_size=32768):
    """(analyzer, extractor, store) cloned from *spec*."""
    clone = SemanticAnalyzer.from_spec(spec)
    extractor = FeatureExtractor(clone, cache_size=cache_size)
    store = ColumnarCommentStore(clone.interner)
    return clone, extractor, store


def make_records(texts: list[str], comments_per_item: int = 3) -> list[Rec]:
    return [
        Rec(item_id=i // comments_per_item, comment_id=i, content=text)
        for i, text in enumerate(texts)
    ]


def serial_store(spec: bytes, records, chunk_size=8192):
    clone, extractor, store = fresh(spec)
    append_comments(store, extractor, records, chunk_size=chunk_size)
    return clone, extractor, store


def assert_stores_identical(expected: ColumnarCommentStore,
                            actual: ColumnarCommentStore) -> None:
    assert actual.n_comments == expected.n_comments
    assert np.array_equal(
        np.asarray(actual.tokens()), np.asarray(expected.tokens())
    )
    assert np.array_equal(
        np.asarray(actual.offsets()), np.asarray(expected.offsets())
    )
    for name in COMPARED_COLUMNS:
        assert np.array_equal(
            np.asarray(actual.column(name)),
            np.asarray(expected.column(name)),
        ), f"column {name} differs"
    left = expected.interner.export_state()
    right = actual.interner.export_state()
    assert left["words"] == right["words"]
    for key in ("positive_mask", "negative_mask", "sentiment_ids"):
        assert np.array_equal(left[key], right[key])


class TestMergeInterners:
    def _interner(self, base_words):
        interner = TokenInterner(
            positive=frozenset({"p"}), negative=frozenset({"n"})
        )
        for word in base_words:
            interner.intern(word)
        return interner

    def test_identity_below_base(self):
        target = self._interner(["a", "b", "c"])
        lut = merge_interners(target, [], base_size=3)
        assert np.array_equal(lut, [0, 1, 2])
        assert len(target) == 3

    def test_new_words_get_dense_ids_in_order(self):
        target = self._interner(["a", "b"])
        lut = merge_interners(target, ["x", "y"], base_size=2)
        assert np.array_equal(lut, [0, 1, 2, 3])
        assert target.words_from(2) == ["x", "y"]

    def test_already_merged_words_keep_their_ids(self):
        target = self._interner(["a", "b"])
        merge_interners(target, ["x", "y"], base_size=2)
        # A second shard saw y first, then a fresh word.
        lut = merge_interners(target, ["y", "z"], base_size=2)
        assert np.array_equal(lut, [0, 1, 3, 4])
        assert target.words_from(0) == ["a", "b", "x", "y", "z"]

    def test_rejects_target_smaller_than_base(self):
        target = self._interner(["a"])
        with pytest.raises(ValueError, match="cloned from a base"):
            merge_interners(target, ["x"], base_size=5)

    def test_remap_gathers_through_lut(self):
        lut = np.array([0, 1, 5, 3], dtype=np.int32)
        ids = np.array([2, 2, 0, 3], dtype=np.int32)
        remapped = remap_ids(ids, lut)
        assert remapped.dtype == np.int32
        assert np.array_equal(remapped, [5, 5, 0, 3])

    def test_remap_rejects_out_of_range_ids(self):
        lut = np.array([0, 1], dtype=np.int32)
        with pytest.raises(ValueError, match="LUT"):
            remap_ids(np.array([2], dtype=np.int32), lut)

    def test_words_from_rejects_negative(self, analyzer):
        with pytest.raises(ValueError):
            analyzer.interner.words_from(-1)


class TestInlineParity:
    """Serial/parallel bit-identity over random corpora, worker counts
    {1,2,3,7} and ragged chunk sizes."""

    @given(data=st.data())
    @settings(max_examples=20, deadline=None)
    def test_store_bit_identical(self, data, spec, words, oov):
        comment = st.lists(
            st.sampled_from(words + ["", ",", "!", oov, oov * 3]),
            min_size=0,
            max_size=6,
        ).map("".join)
        texts = data.draw(st.lists(comment, min_size=2, max_size=40))
        n_workers = data.draw(st.sampled_from([1, 2, 3, 7]))
        chunk_size = data.draw(st.sampled_from([1, 2, 3, 5, 8, 64]))
        records = make_records(texts)

        _, _, expected = serial_store(spec, records)
        _, extractor, store = fresh(spec)
        appended = analyze_many(
            store,
            extractor,
            records,
            n_workers=n_workers,
            chunk_size=chunk_size,
            pool="inline",
        )
        assert appended == len(records)
        assert_stores_identical(expected, store)

    def test_vocab_growth_split_across_chunk_boundaries(self, spec, oov):
        # Fresh words first occur in different chunks; chunk_size=2 with
        # 3 workers puts consecutive chunks on different simulated
        # workers, so the merge must restore global first-seen order.
        novel = [oov * k for k in range(2, 9)]
        texts = []
        for word in novel:
            texts += [word, word + ",", ""]
        records = make_records(texts, comments_per_item=2)
        _, _, expected = serial_store(spec, records)
        _, extractor, store = fresh(spec)
        analyze_many(
            store, extractor, records,
            n_workers=3, chunk_size=2, pool="inline",
        )
        assert_stores_identical(expected, store)

    def test_feature_matrix_and_item_coverage(self, spec, words):
        texts = [w * 2 for w in words[:24]]
        records = make_records(texts, comments_per_item=4)
        item_ids = sorted({r.item_id for r in records})
        _, _, expected = serial_store(spec, records)
        _, extractor, store = fresh(spec)
        analyze_many(
            store, extractor, records,
            n_workers=7, chunk_size=5, pool="inline",
        )
        assert np.array_equal(
            expected.feature_matrix(item_ids),
            store.feature_matrix(item_ids),
        )
        for item_id in item_ids:
            assert np.array_equal(
                expected.item_rows(item_id), store.item_rows(item_id)
            )

    def test_serial_path_for_one_worker(self, spec, words):
        records = make_records([words[0], words[1]])
        _, _, expected = serial_store(spec, records)
        for n_workers in (None, 0, 1):
            _, extractor, store = fresh(spec)
            analyze_many(store, extractor, records, n_workers=n_workers)
            assert_stores_identical(expected, store)


class TestCounterMerge:
    def test_segmentations_folded_into_parent(self, spec, words):
        texts = [words[i % len(words)] * 2 for i in range(20)]
        records = make_records(texts)
        clone, extractor, store = fresh(spec)
        assert clone.n_segmentations == 0
        analyze_many(
            store, extractor, records,
            n_workers=3, chunk_size=4, pool="inline",
        )
        # Every distinct text was segmented somewhere on the parent's
        # behalf; the merged counter reports that work.
        assert clone.n_segmentations >= len(set(texts))

    def test_cache_counters_folded_into_parent(self, spec, words):
        # Every chunk holds the same text, so each worker's second chunk
        # is answered from its local cache.
        texts = [words[0] + words[1]] * 20
        records = make_records(texts)
        _, extractor, store = fresh(spec)
        analyze_many(
            store, extractor, records,
            n_workers=2, chunk_size=5, pool="inline",
        )
        info = extractor.cache_info()
        # Worker-local hits and misses land in the parent's gauges.
        assert info.misses > 0
        assert info.hits > 0

    def test_merge_counters_rejects_negative(self, analyzer):
        with pytest.raises(ValueError):
            analyzer.merge_counters(-1)

    def test_absorb_counters_rejects_negative(self, spec):
        _, extractor, _ = fresh(spec)
        with pytest.raises(ValueError):
            extractor.absorb_worker_cache_counters(-1, 0)


class TestStatsMany:
    def test_equal_to_serial_and_caches(self, spec, words, oov):
        texts = [words[0] + words[1], "", oov * 4, words[2] * 3] * 3
        _, serial_extractor, _ = fresh(spec)
        serial = serial_extractor.comment_stats_many(texts)
        _, extractor, _ = fresh(spec)
        parallel = analyze_stats_many(
            extractor, texts, n_workers=3, pool="inline"
        )
        assert parallel is not None
        assert len(parallel) == len(serial)
        for left, right in zip(serial, parallel):
            assert left == right
            assert np.array_equal(left.token_ids, right.token_ids)
        # Duplicates share one rebuilt object, and the parent cache now
        # serves them without re-analysis.
        assert parallel[0] is parallel[4]
        hits_before = extractor.cache_info().hits
        again = extractor.comment_stats_many(texts)
        assert again[0] is parallel[0]
        assert extractor.cache_info().hits > hits_before

    def test_interner_grows_identically(self, spec, oov):
        texts = [oov * k for k in range(2, 10)]
        clone_serial, serial_extractor, _ = fresh(spec)
        serial_extractor.comment_stats_many(texts)
        clone_parallel, extractor, _ = fresh(spec)
        result = analyze_stats_many(
            extractor, texts, n_workers=3, pool="inline"
        )
        assert result is not None
        assert (
            clone_serial.interner.export_state()["words"]
            == clone_parallel.interner.export_state()["words"]
        )


class TestProcessPool:
    def test_real_pool_matches_serial(self, spec, words, oov):
        texts = [words[i % len(words)] + (oov if i % 7 == 0 else "")
                 for i in range(30)]
        records = make_records(texts)
        _, _, expected = serial_store(spec, records)
        _, extractor, store = fresh(spec)
        runs_before = ENGINE_STATS["parallel_runs"]
        analyze_many(
            store, extractor, records,
            n_workers=2, chunk_size=7, pool="process",
        )
        assert_stores_identical(expected, store)
        assert ENGINE_STATS["parallel_runs"] == runs_before + 1

    def test_killed_worker_fails_loudly_with_empty_store(
        self, spec, words, monkeypatch
    ):
        if multiprocessing.get_start_method() != "fork":
            pytest.skip("fork start method required to inject the kill")

        def die(state, texts):
            os._exit(13)

        # Fork inherits the patched module, so every worker dies on its
        # first chunk.
        monkeypatch.setattr(
            parallel_analysis, "_analyze_chunk_in_state", die
        )
        records = make_records([words[0], words[1], words[2]] * 4)
        _, extractor, store = fresh(spec)
        with pytest.raises(ParallelAnalysisError, match="died mid-run"):
            analyze_many(
                store, extractor, records,
                n_workers=2, chunk_size=3, pool="process",
            )
        # Nothing was committed: no partial store.
        assert store.n_comments == 0
        assert store.n_tokens == 0

    def test_spawn_denied_falls_back_to_serial(
        self, spec, words, monkeypatch
    ):
        def deny(*args, **kwargs):
            raise PermissionError("no processes in this sandbox")

        monkeypatch.setattr(
            parallel_analysis, "ProcessPoolExecutor", deny
        )
        records = make_records([words[0], words[1]] * 3)
        _, _, expected = serial_store(spec, records)
        _, extractor, store = fresh(spec)
        fallbacks_before = ENGINE_STATS["serial_fallbacks"]
        appended = analyze_many(
            store, extractor, records, n_workers=4, chunk_size=2
        )
        assert appended == len(records)
        assert ENGINE_STATS["serial_fallbacks"] == fallbacks_before + 1
        assert_stores_identical(expected, store)


class TestAppendArrays:
    def test_rejects_unremapped_ids(self, spec):
        _, _, store = fresh(spec)
        base = len(store.interner)
        with pytest.raises(ColumnarStoreError, match="remap"):
            store.append_arrays(
                item_ids=[1],
                comment_ids=[1],
                tokens=np.array([base + 10], dtype=np.int32),
                offsets=np.array([0, 1], dtype=np.int64),
                columns={
                    name: np.zeros(1)
                    for name in (
                        "n_chars", "n_positive_distinct", "pos_neg_delta",
                        "n_punctuation", "n_positive_bigrams", "sentiment",
                        "entropy", "punctuation_ratio", "bigram_ratio_term",
                    )
                },
            )

    def test_rejects_bad_offsets(self, spec):
        _, _, store = fresh(spec)
        with pytest.raises(ColumnarStoreError, match="offsets"):
            store.append_arrays(
                item_ids=[], comment_ids=[],
                tokens=np.empty(0, dtype=np.int32),
                offsets=np.array([1], dtype=np.int64),
                columns={},
            )

    def test_rejects_missing_columns(self, spec):
        _, _, store = fresh(spec)
        with pytest.raises(ColumnarStoreError, match="missing"):
            store.append_arrays(
                item_ids=[], comment_ids=[],
                tokens=np.empty(0, dtype=np.int32),
                offsets=np.array([0], dtype=np.int64),
                columns={},
            )


class TestCloneSpec:
    def test_clone_is_independent(self, analyzer):
        clone = SemanticAnalyzer.from_spec(analyzer.clone_spec())
        assert clone is not analyzer
        assert clone.n_segmentations == 0
        base = len(analyzer.interner)
        assert len(clone.interner) == base
        assert clone.interner.words_from(0) == (
            analyzer.interner.words_from(0)
        )
        clone.interner.intern("__clone_only__" )
        assert len(analyzer.interner) == base

    def test_clone_spec_drops_bound_method_shims(self, analyzer):
        # An instrumentation wrapper restored as `analyzer.segment =
        # <bound method>` leaves an instance attribute shadowing the
        # class method; a naive clone would pickle that bound method
        # and count segmentations on its hidden __self__ copy instead
        # of the clone.
        analyzer.segment = analyzer.segment
        try:
            clone = SemanticAnalyzer.from_spec(analyzer.clone_spec())
        finally:
            del analyzer.segment
        assert "segment" not in clone.__dict__
        clone.segment("a")
        assert clone.n_segmentations == 1

    def test_from_spec_rejects_other_payloads(self):
        import pickle

        with pytest.raises(TypeError):
            SemanticAnalyzer.from_spec(pickle.dumps({"not": "analyzer"}))
