"""Tests for repro.text.vocabulary."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.text.vocabulary import Vocabulary

words = st.text(alphabet="abcdef", min_size=1, max_size=6)


class TestConstruction:
    def test_empty(self):
        vocab = Vocabulary()
        assert len(vocab) == 0
        assert vocab.total_count == 0

    def test_from_counts(self):
        vocab = Vocabulary({"a": 3, "b": 1})
        assert len(vocab) == 2
        assert vocab.count("a") == 3

    def test_from_sentences(self):
        vocab = Vocabulary.from_sentences([["a", "b"], ["a"]])
        assert vocab.count("a") == 2
        assert vocab.count("b") == 1

    def test_add_rejects_nonpositive_count(self):
        vocab = Vocabulary()
        with pytest.raises(ValueError):
            vocab.add("a", 0)

    def test_ids_are_contiguous(self):
        vocab = Vocabulary()
        ids = [vocab.add(w) for w in ("x", "y", "z")]
        assert ids == [0, 1, 2]

    def test_re_adding_keeps_id(self):
        vocab = Vocabulary()
        first = vocab.add("x")
        second = vocab.add("x")
        assert first == second
        assert vocab.count("x") == 2


class TestLookups:
    def test_contains(self):
        vocab = Vocabulary({"a": 1})
        assert "a" in vocab
        assert "b" not in vocab

    def test_word_id_roundtrip(self):
        vocab = Vocabulary({"a": 1, "b": 2})
        for word in vocab:
            assert vocab.word(vocab.word_id(word)) == word

    def test_unknown_word_raises(self):
        with pytest.raises(KeyError):
            Vocabulary({"a": 1}).word_id("b")

    def test_count_unknown_is_zero(self):
        assert Vocabulary({"a": 1}).count("zz") == 0

    def test_encode_drops_unknown(self):
        vocab = Vocabulary({"a": 1, "b": 1})
        assert vocab.encode(["a", "zz", "b"]) == [0, 1]

    def test_decode_inverts_encode(self):
        vocab = Vocabulary({"a": 1, "b": 1})
        assert vocab.decode(vocab.encode(["b", "a"])) == ["b", "a"]


class TestStatistics:
    def test_total_count(self):
        vocab = Vocabulary({"a": 3, "b": 2})
        assert vocab.total_count == 5

    def test_counts_array_matches_ids(self):
        vocab = Vocabulary()
        vocab.add("a", 3)
        vocab.add("b", 1)
        arr = vocab.counts_array()
        assert arr[vocab.word_id("a")] == 3
        assert arr[vocab.word_id("b")] == 1
        assert arr.dtype == np.int64

    def test_frequency_sums_to_one(self):
        vocab = Vocabulary({"a": 3, "b": 1})
        total = sum(vocab.frequency(w) for w in vocab)
        assert total == pytest.approx(1.0)

    def test_frequency_of_empty_vocab(self):
        assert Vocabulary().frequency("a") == 0.0

    def test_most_common_order(self):
        vocab = Vocabulary({"a": 1, "b": 5, "c": 3})
        assert [w for w, __ in vocab.most_common()] == ["b", "c", "a"]

    def test_most_common_k(self):
        vocab = Vocabulary({"a": 1, "b": 5, "c": 3})
        assert len(vocab.most_common(2)) == 2


class TestPrune:
    def test_prune_drops_rare(self):
        vocab = Vocabulary({"a": 5, "b": 1})
        pruned = vocab.prune(min_count=2)
        assert "a" in pruned
        assert "b" not in pruned

    def test_prune_preserves_counts(self):
        vocab = Vocabulary({"a": 5, "b": 1})
        assert vocab.prune(2).count("a") == 5

    def test_prune_does_not_mutate_original(self):
        vocab = Vocabulary({"a": 5, "b": 1})
        vocab.prune(2)
        assert "b" in vocab


class TestProperties:
    @given(st.lists(st.lists(words, max_size=8), max_size=10))
    def test_total_count_equals_token_count(self, sentences):
        vocab = Vocabulary.from_sentences(sentences)
        assert vocab.total_count == sum(len(s) for s in sentences)

    @given(st.lists(words, min_size=1, max_size=30))
    def test_encode_values_in_range(self, sentence):
        vocab = Vocabulary.from_sentences([sentence])
        encoded = vocab.encode(sentence)
        assert len(encoded) == len(sentence)
        assert all(0 <= i < len(vocab) for i in encoded)
