"""Tests for repro.text.trie and the trie-backed Viterbi fast path."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.text.segmentation import ViterbiSegmenter
from repro.text.tokenizer import split_punctuation
from repro.text.trie import Trie

LEXICON = {
    "haoping": 100,
    "hao": 60,
    "ping": 10,
    "zhide": 40,
    "mai": 80,
    "zhi": 5,
    "de": 25,
    "demai": 2,
}


class TestTrieBasics:
    def test_empty_trie(self):
        trie = Trie()
        assert len(trie) == 0
        assert trie.max_depth == 0
        assert "hao" not in trie
        assert trie.get("hao") is None
        assert trie.get("hao", -1.0) == -1.0

    def test_insert_and_get(self):
        trie = Trie()
        trie.insert("hao", 1.5)
        assert "hao" in trie
        assert trie.get("hao") == 1.5
        assert len(trie) == 1
        assert trie.max_depth == 3

    def test_prefix_is_not_a_word(self):
        trie = Trie({"haoping": 1})
        assert "hao" not in trie
        assert trie.get("hao") is None

    def test_falsy_payload_is_stored(self):
        # 0.0 is a legitimate log-probability and must not read as
        # "missing".
        trie = Trie({"a": 0.0})
        assert "a" in trie
        assert trie.get("a", -99.0) == 0.0

    def test_overwrite_keeps_word_count(self):
        trie = Trie()
        trie.insert("hao", 1)
        trie.insert("hao", 2)
        assert len(trie) == 1
        assert trie.get("hao") == 2

    def test_empty_word_rejected(self):
        with pytest.raises(ValueError):
            Trie().insert("", 1)

    def test_from_mapping(self):
        trie = Trie(LEXICON)
        assert len(trie) == len(LEXICON)
        assert trie.max_depth == max(len(w) for w in LEXICON)
        for word, count in LEXICON.items():
            assert trie.get(word) == count


class TestMatchesFrom:
    def test_shortest_first_order(self):
        trie = Trie(LEXICON)
        matches = list(trie.matches_from("haoping", 0))
        assert matches == [(3, LEXICON["hao"]), (7, LEXICON["haoping"])]

    def test_respects_start_offset(self):
        trie = Trie(LEXICON)
        assert list(trie.matches_from("haoping", 3)) == [
            (7, LEXICON["ping"])
        ]

    def test_no_matches(self):
        trie = Trie(LEXICON)
        assert list(trie.matches_from("qqq", 0)) == []

    def test_stops_at_dead_prefix(self):
        # "haoq...": walk reaches 'hao', then 'q' kills the branch --
        # "haoping" is never reported even though "hao" was.
        trie = Trie(LEXICON)
        assert list(trie.matches_from("haoqping", 0)) == [
            (3, LEXICON["hao"])
        ]

    @given(
        lexicon=st.dictionaries(
            st.text(alphabet="abcd", min_size=1, max_size=4),
            st.integers(1, 100),
            min_size=1,
            max_size=12,
        ),
        text=st.text(alphabet="abcde", max_size=12),
        start=st.integers(0, 12),
    )
    @settings(max_examples=80)
    def test_matches_equal_brute_force(self, lexicon, text, start):
        trie = Trie(lexicon)
        expected = [
            (end, lexicon[text[start:end]])
            for end in range(start + 1, len(text) + 1)
            if text[start:end] in lexicon
        ]
        assert list(trie.matches_from(text, start)) == expected


class TestTrieViterbiEquivalence:
    """The trie-driven DP must reproduce the substring-hashing
    reference segmentation exactly (same words, not merely same
    likelihood)."""

    def _segment_reference(self, seg: ViterbiSegmenter, text: str):
        words = []
        for run in split_punctuation(text):
            words.extend(seg._segment_run_reference(run))
        return words

    def test_known_ambiguity(self):
        seg = ViterbiSegmenter(LEXICON)
        text = "zhidemai"
        assert seg.segment(text) == self._segment_reference(seg, text)
        assert seg.segment(text) == ["zhide", "mai"]

    @given(
        st.lists(st.sampled_from(sorted(LEXICON)), min_size=0, max_size=8)
    )
    @settings(max_examples=60)
    def test_rendered_words_match_reference(self, word_seq):
        seg = ViterbiSegmenter(LEXICON)
        text = "".join(word_seq)
        assert seg.segment(text) == self._segment_reference(seg, text)

    @given(st.text(alphabet="adehgimnopqz,.! ", max_size=40))
    @settings(max_examples=80)
    def test_arbitrary_text_matches_reference(self, text):
        seg = ViterbiSegmenter(LEXICON)
        assert seg.segment(text) == self._segment_reference(seg, text)

    @given(
        lexicon=st.dictionaries(
            st.text(alphabet="abcd", min_size=1, max_size=4),
            st.integers(1, 100),
            min_size=1,
            max_size=16,
        ),
        text=st.text(alphabet="abcde", max_size=30),
    )
    @settings(max_examples=100)
    def test_random_dictionaries_match_reference(self, lexicon, text):
        # Random dictionaries exercise tie-breaking: equal-score
        # segmentations must resolve identically in both
        # implementations.
        seg = ViterbiSegmenter(lexicon)
        assert seg.segment(text) == self._segment_reference(seg, text)

    def test_language_scale_dictionary(self, language, rng):
        from repro.ecommerce.language import PROMO_STYLE

        seg = ViterbiSegmenter(language.dictionary_weights())
        for __ in range(10):
            text, __words = language.generate_comment(PROMO_STYLE, rng)
            assert seg.segment(text) == self._segment_reference(seg, text)
