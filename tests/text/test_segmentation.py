"""Tests for repro.text.segmentation."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.text.segmentation import (
    BidirectionalMatcher,
    MaxMatchSegmenter,
    ViterbiSegmenter,
)
from repro.text.tokenizer import strip_punctuation

LEXICON = {
    "haoping": 100,
    "hao": 60,
    "ping": 10,
    "zhide": 40,
    "mai": 80,
    "zhi": 5,
    "de": 25,
    "demai": 2,
}

ALL_SEGMENTERS = [MaxMatchSegmenter, BidirectionalMatcher, ViterbiSegmenter]


@pytest.fixture(params=ALL_SEGMENTERS)
def any_segmenter(request):
    return request.param(LEXICON)


class TestConstruction:
    def test_empty_lexicon_rejected(self):
        with pytest.raises(ValueError):
            ViterbiSegmenter({})

    def test_lexicon_size(self):
        assert ViterbiSegmenter(LEXICON).lexicon_size == len(LEXICON)

    def test_max_word_length(self):
        assert ViterbiSegmenter(LEXICON).max_word_length == 7

    def test_accepts_vocabulary(self):
        from repro.text.vocabulary import Vocabulary

        seg = ViterbiSegmenter(Vocabulary(LEXICON))
        assert seg.knows("haoping")


class TestCommonBehaviour:
    def test_empty_text(self, any_segmenter):
        assert any_segmenter.segment("") == []

    def test_punctuation_only(self, any_segmenter):
        assert any_segmenter.segment(",.!") == []

    def test_single_known_word(self, any_segmenter):
        assert any_segmenter.segment("haoping") == ["haoping"]

    def test_cover_property(self, any_segmenter):
        text = "haopingzhidemai"
        assert "".join(any_segmenter.segment(text)) == text

    def test_punctuation_removed(self, any_segmenter):
        words = any_segmenter.segment("haoping,zhide!")
        assert words == ["haoping", "zhide"]

    def test_segment_many(self, any_segmenter):
        results = any_segmenter.segment_many(["haoping", "mai"])
        assert results == [["haoping"], ["mai"]]

    def test_oov_characters_survive(self, any_segmenter):
        # q is not in any lexicon word longer than 1; the char must
        # still appear in the output as a single-char word.
        words = any_segmenter.segment("qqhaoping")
        assert "".join(words) == "qqhaoping"


class TestMaxMatch:
    def test_forward_greedy(self):
        seg = MaxMatchSegmenter(LEXICON)
        # Greedy forward takes "haoping" not "hao"+"ping".
        assert seg.segment("haoping") == ["haoping"]

    def test_backward_direction(self):
        # Backward greedy grabs "demai" from the right edge, unlike
        # Viterbi which prefers the likelier "zhide"+"mai".
        seg = MaxMatchSegmenter(LEXICON, reverse=True)
        assert seg.segment("zhidemai") == ["zhi", "demai"]

    def test_forward_backward_can_differ(self):
        lex = {"ab": 5, "bc": 5, "a": 1, "c": 1}
        fwd = MaxMatchSegmenter(lex, reverse=False).segment("abc")
        bwd = MaxMatchSegmenter(lex, reverse=True).segment("abc")
        assert fwd == ["ab", "c"]
        assert bwd == ["a", "bc"]


class TestBidirectional:
    def test_prefers_fewer_words(self):
        lex = {"abc": 1, "a": 1, "bc": 1}
        seg = BidirectionalMatcher(lex)
        assert seg.segment("abc") == ["abc"]

    def test_tie_prefers_fewer_singles(self):
        lex = {"ab": 5, "cd": 5, "a": 1, "bcd": 1}
        seg = BidirectionalMatcher(lex)
        result = seg.segment("abcd")
        singles = sum(1 for w in result if len(w) == 1)
        assert singles == min(
            sum(1 for w in ["ab", "cd"] if len(w) == 1),
            sum(1 for w in ["a", "bcd"] if len(w) == 1),
        )


class TestViterbi:
    def test_prefers_likely_words(self):
        # "zhidemai": "zhide"+"mai" (40*80) beats "zhi"+"demai" (5*2).
        seg = ViterbiSegmenter(LEXICON)
        assert seg.segment("zhidemai") == ["zhide", "mai"]

    def test_word_log_prob_ordering(self):
        seg = ViterbiSegmenter(LEXICON)
        assert seg.word_log_prob("haoping") > seg.word_log_prob("ping")

    def test_oov_log_prob_is_penalized(self):
        seg = ViterbiSegmenter(LEXICON)
        assert seg.word_log_prob("zzzz") < seg.word_log_prob("ping")

    def test_recovers_language_rendering(self, language, rng):
        """Viterbi recovers most true words of generated comments."""
        from repro.ecommerce.language import PROMO_STYLE

        seg = ViterbiSegmenter(language.dictionary_weights())
        total = 0
        correct = 0
        for __ in range(20):
            text, true_words = language.generate_comment(PROMO_STYLE, rng)
            recovered = seg.segment(text)
            total += len(true_words)
            # Multiset overlap.
            from collections import Counter

            overlap = Counter(true_words) & Counter(recovered)
            correct += sum(overlap.values())
        assert correct / total > 0.9


class TestDPBufferReuse:
    """One segmenter instance reuses its DP buffers across runs; stale
    values from a longer earlier run must never leak into a later
    segmentation (bit-identity against the fresh-buffer reference)."""

    def _reference(self, seg, text):
        from repro.text.tokenizer import split_punctuation

        words = []
        for run in split_punctuation(text):
            words.extend(seg._segment_run_reference(run))
        return words

    @given(
        st.lists(
            st.text(alphabet="adehgimnopqz,.!", max_size=30),
            min_size=1,
            max_size=12,
        )
    )
    @settings(max_examples=60)
    def test_sequential_segmentations_match_reference(self, texts):
        seg = ViterbiSegmenter(LEXICON)
        for text in texts:
            assert seg.segment(text) == self._reference(seg, text)

    def test_long_then_short_runs(self):
        # A long run grows the buffers; the short run after it reads
        # only freshly-reset cells.
        seg = ViterbiSegmenter(LEXICON)
        long_text = "haopingzhidemai" * 20
        short_text = "zhidemai"
        assert seg.segment(long_text) == self._reference(seg, long_text)
        assert seg.segment(short_text) == self._reference(seg, short_text)
        assert seg.segment(short_text) == ["zhide", "mai"]

    def test_buffers_survive_pickling(self):
        import pickle

        seg = pickle.loads(pickle.dumps(ViterbiSegmenter(LEXICON)))
        assert seg.segment("zhidemai") == ["zhide", "mai"]

    def test_unpickled_pre_buffer_archive(self):
        # Archives pickled before the DP buffers existed rebuild them
        # lazily on first use.
        seg = ViterbiSegmenter(LEXICON)
        del seg._best
        del seg._back
        assert seg.segment("zhidemai") == ["zhide", "mai"]


class TestCoverProperty:
    @given(
        st.lists(
            st.sampled_from(sorted(LEXICON)), min_size=1, max_size=12
        )
    )
    @settings(max_examples=60)
    def test_viterbi_cover_of_rendered_words(self, word_seq):
        seg = ViterbiSegmenter(LEXICON)
        text = "".join(word_seq)
        assert "".join(seg.segment(text)) == text

    @given(st.text(alphabet="adehgimnopz,.!", max_size=40))
    @settings(max_examples=60)
    def test_all_segmenters_cover_arbitrary_text(self, text):
        expected = strip_punctuation(text).replace(" ", "")
        for cls in ALL_SEGMENTERS:
            seg = cls(LEXICON)
            assert "".join(seg.segment(text)) == expected
