"""Tests for repro.text.stats."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.text.stats import (
    comment_entropy,
    comment_length,
    duplicate_word_count,
    punctuation_count,
    punctuation_ratio,
    unique_word_ratio,
)


class TestEntropy:
    def test_empty_is_zero(self):
        assert comment_entropy([]) == 0.0

    def test_single_word_is_zero(self):
        assert comment_entropy(["a"]) == 0.0

    def test_all_same_is_zero(self):
        assert comment_entropy(["a", "a", "a"]) == 0.0

    def test_uniform_two_words(self):
        assert comment_entropy(["a", "b"]) == pytest.approx(math.log(2))

    def test_uniform_four_words(self):
        assert comment_entropy(["a", "b", "c", "d"]) == pytest.approx(
            math.log(4)
        )

    def test_skewed_below_uniform(self):
        skewed = comment_entropy(["a", "a", "a", "b"])
        uniform = comment_entropy(["a", "a", "b", "b"])
        assert skewed < uniform

    @given(st.lists(st.sampled_from("abcde"), min_size=1, max_size=40))
    def test_bounds(self, words):
        h = comment_entropy(words)
        assert 0.0 <= h <= math.log(len(set(words))) + 1e-9

    @given(st.lists(st.sampled_from("abc"), min_size=1, max_size=20))
    def test_invariant_under_permutation(self, words):
        assert comment_entropy(words) == pytest.approx(
            comment_entropy(sorted(words))
        )


class TestUniqueWordRatio:
    def test_empty_is_zero(self):
        assert unique_word_ratio([]) == 0.0

    def test_all_unique(self):
        assert unique_word_ratio(["a", "b", "c"]) == 1.0

    def test_all_duplicates(self):
        assert unique_word_ratio(["a", "a", "a", "a"]) == 0.25

    @given(st.lists(st.sampled_from("abcd"), min_size=1, max_size=30))
    def test_in_unit_interval(self, words):
        assert 0.0 < unique_word_ratio(words) <= 1.0


class TestPunctuation:
    def test_count(self):
        assert punctuation_count("a,b!c") == 2

    def test_ratio(self):
        assert punctuation_ratio("a,b!") == pytest.approx(0.5)

    def test_ratio_empty(self):
        assert punctuation_ratio("") == 0.0

    def test_ratio_bounds(self):
        assert 0.0 <= punctuation_ratio("ab,.") <= 1.0


class TestLengthAndDuplicates:
    def test_comment_length(self):
        assert comment_length(["a", "b"]) == 2

    def test_duplicate_count_none(self):
        assert duplicate_word_count(["a", "b"]) == 0

    def test_duplicate_count_some(self):
        assert duplicate_word_count(["a", "a", "b", "a"]) == 2

    @given(st.lists(st.sampled_from("ab"), max_size=25))
    def test_duplicates_plus_uniques_is_total(self, words):
        assert duplicate_word_count(words) + len(set(words)) == len(words)
