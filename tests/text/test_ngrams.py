"""Tests for repro.text.ngrams."""

import pytest
from hypothesis import given, strategies as st

from repro.text.ngrams import (
    bigrams,
    is_positive_bigram,
    ngrams,
    positive_bigram_count,
)


class TestNgrams:
    def test_bigrams_basic(self):
        assert ngrams(["a", "b", "c"], 2) == [("a", "b"), ("b", "c")]

    def test_unigrams(self):
        assert ngrams(["a", "b"], 1) == [("a",), ("b",)]

    def test_n_longer_than_sequence(self):
        assert ngrams(["a"], 2) == []

    def test_empty_sequence(self):
        assert ngrams([], 3) == []

    def test_invalid_n(self):
        with pytest.raises(ValueError):
            ngrams(["a"], 0)

    def test_trigrams(self):
        assert ngrams(["a", "b", "c", "d"], 3) == [
            ("a", "b", "c"),
            ("b", "c", "d"),
        ]

    @given(st.lists(st.text(max_size=3), max_size=20), st.integers(1, 5))
    def test_count_formula(self, words, n):
        result = ngrams(words, n)
        assert len(result) == max(0, len(words) - n + 1)


class TestBigrams:
    def test_matches_ngrams(self):
        words = ["x", "y", "z", "w"]
        assert bigrams(words) == ngrams(words, 2)

    def test_empty(self):
        assert bigrams([]) == []

    def test_single_word(self):
        assert bigrams(["a"]) == []


class TestPositiveBigram:
    def test_first_member_positive(self):
        assert is_positive_bigram(("good", "thing"), {"good"})

    def test_second_member_positive(self):
        assert is_positive_bigram(("thing", "good"), {"good"})

    def test_neither_positive(self):
        assert not is_positive_bigram(("a", "b"), {"good"})

    def test_accepts_list_lexicon(self):
        assert is_positive_bigram(("good", "x"), ["good"])


class TestPositiveBigramCount:
    def test_basic_count(self):
        # bigrams: (good,item) (item,bad) -> only first has a positive.
        assert positive_bigram_count(["good", "item", "bad"], {"good"}) == 1

    def test_adjacent_positives_count_twice(self):
        # (good,nice) (nice,x): both contain a positive member.
        assert (
            positive_bigram_count(["good", "nice", "x"], {"good", "nice"})
            == 2
        )

    def test_no_positives(self):
        assert positive_bigram_count(["a", "b", "c"], {"zz"}) == 0

    def test_short_input(self):
        assert positive_bigram_count(["good"], {"good"}) == 0

    @given(
        st.lists(st.sampled_from(["p", "q", "n"]), max_size=25),
        st.just(frozenset({"p", "q"})),
    )
    def test_bounded_by_bigram_count(self, words, positive):
        count = positive_bigram_count(words, positive)
        assert 0 <= count <= max(0, len(words) - 1)

    @given(st.lists(st.sampled_from(["p", "n"]), min_size=2, max_size=25))
    def test_matches_naive_definition(self, words):
        positive = frozenset({"p"})
        naive = sum(
            1
            for i in range(len(words) - 1)
            if is_positive_bigram((words[i], words[i + 1]), positive)
        )
        assert positive_bigram_count(words, positive) == naive
