"""Tests for repro.text.tokenizer."""

import pytest

from repro.text.tokenizer import (
    PUNCTUATION,
    SENTENCE_FINAL,
    count_punctuation,
    is_punctuation,
    join_words,
    split_punctuation,
    strip_punctuation,
)


class TestIsPunctuation:
    def test_ascii_marks(self):
        assert is_punctuation(",")
        assert is_punctuation("!")
        assert is_punctuation("?")

    def test_fullwidth_marks(self):
        assert is_punctuation("，")
        assert is_punctuation("。")
        assert is_punctuation("！")

    def test_letters_are_not(self):
        assert not is_punctuation("a")
        assert not is_punctuation("z")

    def test_digits_are_not(self):
        assert not is_punctuation("3")

    def test_sentence_final_subset_of_punctuation(self):
        assert SENTENCE_FINAL <= PUNCTUATION


class TestStripPunctuation:
    def test_removes_all_marks(self):
        assert strip_punctuation("a,b!c。d") == "abcd"

    def test_empty_string(self):
        assert strip_punctuation("") == ""

    def test_no_punctuation_unchanged(self):
        assert strip_punctuation("haoping") == "haoping"

    def test_only_punctuation(self):
        assert strip_punctuation(",.!") == ""


class TestSplitPunctuation:
    def test_splits_on_marks(self):
        assert split_punctuation("ab,cd!ef") == ["ab", "cd", "ef"]

    def test_drops_empty_runs(self):
        assert split_punctuation(",,ab,,") == ["ab"]

    def test_whitespace_also_splits(self):
        assert split_punctuation("ab cd") == ["ab", "cd"]

    def test_empty_input(self):
        assert split_punctuation("") == []

    def test_fullwidth_marks_split(self):
        assert split_punctuation("ab，cd。") == ["ab", "cd"]

    def test_single_run(self):
        assert split_punctuation("abcdef") == ["abcdef"]


class TestCountPunctuation:
    def test_counts_each_mark(self):
        assert count_punctuation("a,b!!") == 3

    def test_zero_for_clean_text(self):
        assert count_punctuation("abc") == 0

    def test_mixed_width(self):
        assert count_punctuation("a，b.") == 2


class TestJoinWords:
    def test_default_no_separator(self):
        assert join_words(["ab", "cd"]) == "abcd"

    def test_custom_separator(self):
        assert join_words(["ab", "cd"], separator=" ") == "ab cd"

    def test_empty(self):
        assert join_words([]) == ""
