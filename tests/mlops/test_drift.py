"""Tests for repro.mlops.drift (PSI / KS and the live monitor)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.features import FEATURE_NAMES
from repro.mlops.drift import (
    DriftError,
    DriftMonitor,
    ReferenceHistogram,
    ks_from_counts,
    psi_from_counts,
)


def _matrix(rng, n_rows=400, shift=0.0, scale=1.0):
    X = rng.normal(loc=shift, scale=scale, size=(n_rows, len(FEATURE_NAMES)))
    return np.abs(X)


class TestPsi:
    def test_identical_histograms_exactly_zero(self):
        counts = np.array([5.0, 10.0, 3.0, 0.0, 7.0])
        assert psi_from_counts(counts, counts) == 0.0

    def test_proportional_histograms_exactly_zero(self):
        counts = np.array([5.0, 10.0, 3.0, 2.0])
        assert psi_from_counts(counts, counts * 3) == 0.0

    def test_shifted_distribution_large(self):
        reference = np.array([100.0, 50.0, 10.0, 1.0])
        shifted = np.array([1.0, 10.0, 50.0, 100.0])
        assert psi_from_counts(reference, shifted) > 0.25

    def test_mild_shift_small(self):
        reference = np.array([100.0, 100.0, 100.0, 100.0])
        mild = np.array([105.0, 95.0, 102.0, 98.0])
        assert 0.0 < psi_from_counts(reference, mild) < 0.1

    def test_empty_live_is_zero(self):
        reference = np.array([10.0, 20.0])
        assert psi_from_counts(reference, np.zeros(2)) == 0.0

    def test_empty_reference_raises(self):
        with pytest.raises(DriftError):
            psi_from_counts(np.zeros(3), np.ones(3))

    def test_shape_mismatch_raises(self):
        with pytest.raises(DriftError):
            psi_from_counts(np.ones(3), np.ones(4))

    def test_empty_live_bin_is_finite(self):
        reference = np.array([10.0, 10.0, 10.0])
        live = np.array([15.0, 15.0, 0.0])
        value = psi_from_counts(reference, live)
        assert np.isfinite(value) and value > 0.0

    @given(
        st.lists(
            st.integers(min_value=0, max_value=1000), min_size=2, max_size=16
        ).filter(lambda c: sum(c) > 0)
    )
    @settings(max_examples=50, deadline=None)
    def test_property_self_psi_zero(self, counts):
        histogram = np.array(counts, dtype=float)
        assert psi_from_counts(histogram, histogram) == 0.0

    @given(
        st.lists(
            st.integers(min_value=0, max_value=1000), min_size=2, max_size=16
        ).filter(lambda c: sum(c) > 0),
        st.lists(
            st.integers(min_value=0, max_value=1000), min_size=2, max_size=16
        ).filter(lambda c: sum(c) > 0),
    )
    @settings(max_examples=50, deadline=None)
    def test_property_psi_nonnegative(self, a, b):
        size = min(len(a), len(b))
        p = np.array(a[:size], dtype=float)
        q = np.array(b[:size], dtype=float)
        if p.sum() == 0 or q.sum() == 0:
            return
        assert psi_from_counts(p, q) >= 0.0


class TestKs:
    def test_identical_is_zero(self):
        counts = np.array([4.0, 4.0, 4.0])
        assert ks_from_counts(counts, counts) == 0.0

    def test_disjoint_is_one(self):
        reference = np.array([10.0, 0.0])
        live = np.array([0.0, 10.0])
        assert ks_from_counts(reference, live) == pytest.approx(1.0)

    def test_empty_either_side_is_zero(self):
        counts = np.array([1.0, 2.0])
        assert ks_from_counts(counts, np.zeros(2)) == 0.0
        assert ks_from_counts(np.zeros(2), counts) == 0.0

    @given(
        st.lists(
            st.integers(min_value=0, max_value=500), min_size=2, max_size=12
        ).filter(lambda c: sum(c) > 0),
        st.lists(
            st.integers(min_value=0, max_value=500), min_size=2, max_size=12
        ).filter(lambda c: sum(c) > 0),
    )
    @settings(max_examples=50, deadline=None)
    def test_property_symmetric_and_bounded(self, a, b):
        size = min(len(a), len(b))
        p = np.array(a[:size], dtype=float)
        q = np.array(b[:size], dtype=float)
        if p.sum() == 0 or q.sum() == 0:
            return
        forward = ks_from_counts(p, q)
        backward = ks_from_counts(q, p)
        assert forward == pytest.approx(backward)
        assert 0.0 <= forward <= 1.0


class TestReferenceHistogram:
    def test_from_matrix_shapes(self, rng):
        X = _matrix(rng)
        reference = ReferenceHistogram.from_matrix(X)
        assert reference.n_features == len(FEATURE_NAMES)
        assert reference.n_rows == X.shape[0]
        for edge, count in zip(reference.edges, reference.counts):
            assert len(count) == len(edge) + 1
            assert count.sum() == X.shape[0]

    def test_constant_feature_single_bin(self, rng):
        X = _matrix(rng)
        X[:, 0] = 3.5
        reference = ReferenceHistogram.from_matrix(X)
        assert len(reference.edges[0]) == 0
        assert reference.counts[0].tolist() == [X.shape[0]]

    def test_empty_matrix_rejected(self):
        with pytest.raises(DriftError):
            ReferenceHistogram.from_matrix(
                np.empty((0, len(FEATURE_NAMES)))
            )

    def test_column_count_mismatch_rejected(self, rng):
        with pytest.raises(DriftError):
            ReferenceHistogram.from_matrix(rng.normal(size=(10, 3)))

    def test_save_load_roundtrip(self, rng, tmp_path):
        X = _matrix(rng)
        reference = ReferenceHistogram.from_matrix(X)
        reference.save(tmp_path)
        assert ReferenceHistogram.exists(tmp_path)
        loaded = ReferenceHistogram.load(tmp_path)
        assert loaded.feature_names == reference.feature_names
        for a, b in zip(loaded.edges, reference.edges):
            np.testing.assert_array_equal(a, b)
        for a, b in zip(loaded.counts, reference.counts):
            np.testing.assert_array_equal(a, b)

    def test_load_missing_raises(self, tmp_path):
        assert not ReferenceHistogram.exists(tmp_path)
        with pytest.raises(DriftError):
            ReferenceHistogram.load(tmp_path)


class TestDriftMonitor:
    def test_unshifted_traffic_low_psi(self, rng):
        X = _matrix(rng, n_rows=2000)
        monitor = DriftMonitor(ReferenceHistogram.from_matrix(X))
        monitor.observe_matrix(_matrix(rng, n_rows=2000))
        summary = monitor.summary()
        assert summary["n_live_rows"] == 2000
        assert summary["max_psi"] < 0.1

    def test_identical_traffic_zero_psi(self, rng):
        X = _matrix(rng)
        monitor = DriftMonitor(ReferenceHistogram.from_matrix(X))
        monitor.observe_matrix(X)
        assert monitor.summary()["max_psi"] == 0.0

    def test_shifted_traffic_high_psi(self, rng):
        X = _matrix(rng, n_rows=2000)
        monitor = DriftMonitor(ReferenceHistogram.from_matrix(X))
        monitor.observe_matrix(_matrix(rng, n_rows=2000, shift=4.0))
        summary = monitor.summary()
        assert summary["max_psi"] > 0.2
        assert summary["max_ks"] > 0.2

    def test_single_row_observation(self, rng):
        X = _matrix(rng)
        monitor = DriftMonitor(ReferenceHistogram.from_matrix(X))
        monitor.observe_matrix(X[0])  # 1-D vector path
        assert monitor.n_live_rows == 1

    def test_no_traffic_summary_is_clean(self, rng):
        monitor = DriftMonitor(ReferenceHistogram.from_matrix(_matrix(rng)))
        summary = monitor.summary()
        assert summary["n_live_rows"] == 0
        assert summary["max_psi"] == 0.0
        assert summary["max_ks"] == 0.0

    def test_reset_clears_live_state(self, rng):
        X = _matrix(rng)
        monitor = DriftMonitor(ReferenceHistogram.from_matrix(X))
        monitor.observe_matrix(_matrix(rng, shift=4.0))
        monitor.reset()
        assert monitor.n_live_rows == 0
        assert monitor.summary()["max_psi"] == 0.0

    def test_wrong_width_rejected(self, rng):
        monitor = DriftMonitor(ReferenceHistogram.from_matrix(_matrix(rng)))
        with pytest.raises(DriftError):
            monitor.observe_matrix(np.ones((2, 3)))

    def test_summary_names_every_feature(self, rng):
        monitor = DriftMonitor(ReferenceHistogram.from_matrix(_matrix(rng)))
        summary = monitor.summary()
        assert set(summary["psi"]) == set(FEATURE_NAMES)
        assert set(summary["ks"]) == set(FEATURE_NAMES)
