"""Shared fixtures for the model-lifecycle tests."""

from __future__ import annotations

import pytest

from repro.core.system import CATS
from tests.serving.conftest import interleaved_feed


@pytest.fixture(scope="session")
def feed(taobao_platform):
    return interleaved_feed(taobao_platform)


@pytest.fixture(scope="session")
def feed_item_ids(feed):
    return sorted({record.item_id for record in feed})


@pytest.fixture(scope="session")
def challenger_cats(analyzer, small_config, d0_small) -> CATS:
    """A challenger: same analyzer, detector trained on half of D0."""
    half = len(d0_small.items) // 2
    cats = CATS(analyzer, config=small_config)
    cats.fit(d0_small.items[:half], d0_small.labels[:half])
    return cats
