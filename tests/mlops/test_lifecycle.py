"""End-to-end model lifecycle.

The acceptance scenario for the mlops subsystem, in one place:
train v1 -> register + promote -> serve it (recording traffic, drift
monitored) -> train v2 -> shadow-score v2 on live traffic -> replay the
recording under both -> promote v2 -> restart serving on the new
champion.  Along the way: champion scores with the shadow on are
bit-identical to a shadow-off run, drift PSI stays ~0 on unshifted
traffic and exceeds 0.2 on injected shift, and a checkpoint written
under v1 refuses to restore under v2.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.collector.records import CommentRecord
from repro.core.streaming import StreamingDetector
from repro.mlops import (
    DriftMonitor,
    ModelRegistry,
    ReferenceHistogram,
    ShadowScorer,
    TrafficRecorder,
    compare_recording,
    replay_recording,
)
from repro.serving import DetectionService


def _live_reference(cats, feed, item_ids) -> ReferenceHistogram:
    """Reference histogram over exactly the vectors a serve of *feed*
    would observe (same cadence: growth 1.0 + one final rescore)."""
    captured: list[np.ndarray] = []
    stream = StreamingDetector(cats, rescore_growth=1.0)
    stream.feature_observer = lambda X: captured.append(np.array(X))
    stream.observe_many(feed)
    stream.force_rescore_many(item_ids)
    return ReferenceHistogram.from_matrix(np.vstack(captured))


def _shifted_comments(feed, n_items=15, per_item=4) -> list[CommentRecord]:
    """Pathological traffic: same vocabulary, wildly longer comments."""
    shifted = []
    for k in range(n_items * per_item):
        source = feed[k % len(feed)]
        shifted.append(
            dataclasses.replace(
                source,
                item_id=900_000 + k % n_items,
                comment_id=10_000_000 + k,
                content=(source.content + " ") * 10,
            )
        )
    return shifted


def test_full_lifecycle(
    tmp_path, trained_cats, challenger_cats, feed, feed_item_ids
):
    registry = ModelRegistry(tmp_path / "registry")
    recording = tmp_path / "traffic.jsonl"
    checkpoint_dir = tmp_path / "checkpoints"

    # --- v1: register and promote --------------------------------------
    v1 = registry.register(trained_cats, note="initial")
    registry.promote(v1.version)
    champion, entry = registry.load_champion()
    assert entry.version == 1

    # --- baseline: shadow-off serve of the same feed -------------------
    baseline = DetectionService(
        trained_cats, rescore_growth=1.0, max_delay_ms=2
    ).start()
    try:
        baseline.ingest(feed)
        baseline_scores = baseline.score(feed_item_ids)
        baseline_alerts = baseline.alerts()
    finally:
        baseline.stop()

    # --- serve v1: record traffic, monitor drift, shadow v2 ------------
    reference = _live_reference(trained_cats, feed, feed_item_ids)
    reference.save(entry.artifact_dir)
    v2 = registry.register(challenger_cats, parent=1, note="retrained")
    shadow = ShadowScorer(
        champion,
        registry.load_version(v2.version),
        info=registry.model_info(v2.version),
        rescore_growth=1.0,
    )
    service = DetectionService(
        champion,
        rescore_growth=1.0,
        max_delay_ms=2,
        model_info=registry.model_info(1),
        drift_monitor=DriftMonitor(ReferenceHistogram.load(entry.artifact_dir)),
        recorder=TrafficRecorder(recording),
        shadow=shadow,
        checkpoint_dir=checkpoint_dir,
        checkpoint_every=100,
    ).start()
    try:
        service.ingest(feed)
        live_scores = service.score(feed_item_ids)

        # Champion outputs are untouched by shadow/drift/recording.
        assert live_scores == baseline_scores
        assert service.alerts() == baseline_alerts

        # Model identity is served and stamped.
        health = service.healthz()
        assert health["model"]["version"] == 1
        assert health["model"]["content_hash"] == entry.content_hash

        # Un-shifted traffic: the live vectors match the reference.
        drift = service.drift_report()
        assert drift["n_live_rows"] > 0
        assert drift["max_psi"] < 0.05
        assert drift["model"]["version"] == 1

        # Injected shift: reset the window, feed pathological traffic.
        service.drift_monitor.reset()
        service.ingest(_shifted_comments(feed))
        assert service.drift_report()["max_psi"] > 0.2
    finally:
        assert service.stop()

    # Shadow/recorder counters are read after the drain (the shadow
    # compares off the champion's response path).
    stats = service.stats()
    assert stats["model"]["version"] == 1
    assert stats["shadow"]["model"]["version"] == 2
    assert stats["shadow"]["scored"] == len(feed_item_ids)
    assert stats["shadow_errors"] == 0
    assert stats["events_recorded"] > 0
    assert stats["checkpoints_written"] >= 1

    # --- offline: replay the recording under both versions -------------
    replayed = replay_recording(
        registry.load_version(1), recording, rescore_growth=1.0
    )
    for item_id, probability in baseline_scores.items():
        assert replayed.probabilities[item_id] == probability
    report = compare_recording(
        registry.load_version(1),
        registry.load_version(2),
        recording,
        rescore_growth=1.0,
        champion_info=registry.model_info(1),
        challenger_info=registry.model_info(2),
    )
    assert report["comparison"]["n_items"] >= len(feed_item_ids)

    # --- promote v2; the v1 checkpoint must not restore under it -------
    registry.promote(2)
    new_champion, new_entry = registry.load_champion()
    assert new_entry.version == 2
    with pytest.raises(ValueError, match="cannot restore under"):
        DetectionService(
            new_champion,
            model_info=registry.model_info(2),
            checkpoint_dir=checkpoint_dir,
        )

    # --- restart on the new champion with a fresh lineage --------------
    restarted = DetectionService(
        new_champion,
        rescore_growth=1.0,
        max_delay_ms=2,
        model_info=registry.model_info(2),
        checkpoint_dir=tmp_path / "checkpoints-v2",
    ).start()
    try:
        restarted.ingest(feed)
        restarted_scores = restarted.score(feed_item_ids)
        assert restarted.healthz()["model"]["version"] == 2
    finally:
        restarted.stop()

    # The restarted champion is exactly what the shadow predicted.
    shadow_replay = replay_recording(
        registry.load_version(2), recording, rescore_growth=1.0
    )
    for item_id, probability in restarted_scores.items():
        assert shadow_replay.probabilities[item_id] == probability
