"""Tests for repro.mlops.replay (recorder + offline re-scoring)."""

from __future__ import annotations

import json

import pytest

from repro.mlops.replay import (
    RecordingError,
    TrafficRecorder,
    compare_recording,
    iter_recording,
    replay_recording,
)
from repro.serving import DetectionService


@pytest.fixture(scope="module")
def recording(tmp_path_factory, feed):
    """A recording written the way the serving layer writes one."""
    path = tmp_path_factory.mktemp("rec") / "traffic.jsonl"
    recorder = TrafficRecorder(path)
    for start in range(0, len(feed), 25):
        chunk = feed[start : start + 25]
        sales = [(chunk[0].item_id, 100 + start)] if start % 50 == 0 else []
        recorder.record(chunk, sales)
    recorder.close()
    return path


class TestRecorder:
    def test_counts(self, recording, feed):
        events = list(iter_recording(recording))
        assert sum(len(c) for c, _ in events) == len(feed)

    def test_roundtrip_preserves_records(self, recording, feed):
        replayed = [c for comments, _ in iter_recording(recording)
                    for c in comments]
        assert replayed == feed

    def test_empty_event_skipped(self, tmp_path):
        recorder = TrafficRecorder(tmp_path / "r.jsonl")
        recorder.record([], [])
        recorder.close()
        assert recorder.n_events == 0
        assert list(iter_recording(tmp_path / "r.jsonl")) == []

    def test_stats(self, tmp_path, feed):
        recorder = TrafficRecorder(tmp_path / "r.jsonl")
        recorder.record(feed[:10], [(feed[0].item_id, 5)])
        stats = recorder.stats()
        assert stats == {
            "events_recorded": 1,
            "comments_recorded": 10,
            "sales_recorded": 1,
        }
        recorder.close()

    def test_missing_recording_raises(self, tmp_path):
        with pytest.raises(RecordingError):
            list(iter_recording(tmp_path / "nope.jsonl"))

    def test_malformed_line_names_line_number(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"comments": [{"bogus": 1}], "sales": []}\n')
        with pytest.raises(RecordingError, match="bad.jsonl:1"):
            list(iter_recording(path))


class TestReplay:
    def test_replay_matches_live_service(
        self, trained_cats, feed, feed_item_ids, tmp_path
    ):
        """A replayed recording reproduces the recording service's
        final scores bit-identically."""
        recording = tmp_path / "live.jsonl"
        service = DetectionService(
            trained_cats,
            rescore_growth=1.0,
            max_delay_ms=2,
            recorder=TrafficRecorder(recording),
        ).start()
        try:
            service.ingest(feed)
            live_scores = service.score(feed_item_ids)
        finally:
            service.stop()
        result = replay_recording(trained_cats, recording, rescore_growth=1.0)
        assert result.probabilities == live_scores
        assert result.n_comments == len(feed)
        assert result.n_items == len(feed_item_ids)

    def test_summary_shape(self, trained_cats, recording):
        result = replay_recording(trained_cats, recording, rescore_growth=1.0)
        summary = result.summary()
        assert summary["n_items"] > 0
        assert summary["n_flagged"] == len(result.flagged)
        assert 0.0 < summary["threshold"] < 1.0

    def test_sales_applied(self, trained_cats, recording):
        result = replay_recording(trained_cats, recording, rescore_growth=1.0)
        assert result.n_sales > 0


class TestCompare:
    def test_self_comparison_is_clean(self, trained_cats, recording):
        report = compare_recording(
            trained_cats, trained_cats, recording, rescore_growth=1.0
        )
        comparison = report["comparison"]
        assert comparison["flipped_verdicts"] == 0
        assert comparison["max_abs_delta"] == 0.0
        assert comparison["n_items"] > 0
        assert (
            sum(comparison["delta_histogram"].values())
            == comparison["n_items"]
        )

    def test_challenger_comparison_reports(
        self, trained_cats, challenger_cats, recording
    ):
        report = compare_recording(
            trained_cats,
            challenger_cats,
            recording,
            rescore_growth=1.0,
            champion_info={"version": 1},
            challenger_info={"version": 2},
            top_n=3,
        )
        assert report["champion"]["model"] == {"version": 1}
        assert report["challenger"]["model"] == {"version": 2}
        comparison = report["comparison"]
        assert len(comparison["top_disagreements"]) <= 3
        deltas = [d["delta"] for d in comparison["top_disagreements"]]
        assert deltas == sorted(deltas, reverse=True)
        # The report round-trips through JSON (it feeds `cats replay`).
        json.dumps(report)
