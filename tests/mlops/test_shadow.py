"""Tests for repro.mlops.shadow (disagreement log + shadow scorer)."""

from __future__ import annotations

import json

import pytest

from repro.core.streaming import StreamingDetector
from repro.mlops.shadow import (
    DELTA_LABELS,
    DisagreementLog,
    ShadowScorer,
    delta_bucket,
)
from repro.serving import DetectionService


class TestDeltaBucket:
    def test_edges(self):
        assert delta_bucket(0.0) == "le_0.01"
        assert delta_bucket(0.01) == "le_0.01"
        assert delta_bucket(0.02) == "le_0.05"
        assert delta_bucket(0.5) == "le_0.5"
        assert delta_bucket(0.51) == "gt_0.5"
        assert delta_bucket(1.0) == "gt_0.5"

    def test_labels_cover_all_inputs(self):
        for i in range(101):
            assert delta_bucket(i / 100) in DELTA_LABELS


class TestDisagreementLog:
    def test_append_and_read_back(self, tmp_path):
        log = DisagreementLog(tmp_path / "log.jsonl", max_entries=10)
        log.append({"item_id": 1})
        log.append({"item_id": 2})
        log.close()
        assert [e["item_id"] for e in log.entries()] == [1, 2]

    def test_rotation_bounds_disk(self, tmp_path):
        log = DisagreementLog(tmp_path / "log.jsonl", max_entries=5)
        for i in range(23):
            log.append({"i": i})
        log.close()
        assert log.n_written == 23
        assert log.n_rotations == 4
        # Only the active file and one rotation survive.
        files = sorted(p.name for p in tmp_path.iterdir())
        assert files == ["log.jsonl", "log.jsonl.1"]
        active = (tmp_path / "log.jsonl").read_text().strip().splitlines()
        rotated = (tmp_path / "log.jsonl.1").read_text().strip().splitlines()
        assert len(active) <= 5 and len(rotated) <= 5
        # Newest entries are retained.
        assert json.loads(active[-1])["i"] == 22

    def test_resume_respects_bound(self, tmp_path):
        path = tmp_path / "log.jsonl"
        first = DisagreementLog(path, max_entries=4)
        for i in range(3):
            first.append({"i": i})
        first.close()
        resumed = DisagreementLog(path, max_entries=4)
        resumed.append({"i": 3})
        resumed.append({"i": 4})  # must rotate, not grow past 4
        resumed.close()
        assert len(path.read_text().strip().splitlines()) == 1

    def test_bad_bound_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            DisagreementLog(tmp_path / "x.jsonl", max_entries=0)


def _champion_results(cats, feed, item_ids):
    stream = StreamingDetector(cats, rescore_growth=1.0)
    stream.observe_many(feed)
    return stream.force_rescore_many(item_ids)


class TestShadowScorer:
    def test_identical_challenger_never_disagrees(
        self, trained_cats, feed, feed_item_ids
    ):
        shadow = ShadowScorer(trained_cats, trained_cats, rescore_growth=1.0)
        shadow.observe_feed(feed)
        shadow.compare(_champion_results(trained_cats, feed, feed_item_ids))
        stats = shadow.stats()
        assert stats["scored"] == len(feed_item_ids)
        assert stats["flipped_verdicts"] == 0
        assert stats["max_abs_delta"] == 0.0
        assert stats["delta_histogram"]["le_0.01"] == len(feed_item_ids)

    def test_shared_analyzer_detected(self, trained_cats, challenger_cats):
        shadow = ShadowScorer(trained_cats, challenger_cats)
        assert shadow.analysis_shared  # same analyzer object
        assert (
            challenger_cats.feature_extractor
            is trained_cats.feature_extractor
        )

    def test_counters_consistent(
        self, trained_cats, challenger_cats, feed, feed_item_ids
    ):
        shadow = ShadowScorer(
            trained_cats, challenger_cats, rescore_growth=1.0
        )
        shadow.observe_feed(feed)
        shadow.compare(_champion_results(trained_cats, feed, feed_item_ids))
        stats = shadow.stats()
        assert stats["scored"] == len(feed_item_ids)
        assert sum(stats["delta_histogram"].values()) == stats["scored"]
        assert 0.0 <= stats["mean_abs_delta"] <= stats["max_abs_delta"] <= 1.0
        assert stats["untracked_skips"] == 0

    def test_untracked_items_skipped(self, trained_cats, feed):
        shadow = ShadowScorer(trained_cats, trained_cats, rescore_growth=1.0)
        # The shadow never saw any traffic: nothing is tracked.
        shadow.compare({feed[0].item_id: 0.5, 999999: 0.1})
        stats = shadow.stats()
        assert stats["scored"] == 0
        assert stats["untracked_skips"] == 2

    def test_disagreement_log_written(
        self, trained_cats, challenger_cats, feed, feed_item_ids, tmp_path
    ):
        shadow = ShadowScorer(
            trained_cats,
            challenger_cats,
            log_path=tmp_path / "disagreements.jsonl",
            log_delta=0.0,  # log every comparison
            rescore_growth=1.0,
        )
        shadow.observe_feed(feed)
        shadow.compare(_champion_results(trained_cats, feed, feed_item_ids))
        shadow.close()
        entries = shadow.log.entries()
        assert len(entries) == len(feed_item_ids)
        assert {"item_id", "champion", "challenger", "delta", "flipped"} <= (
            set(entries[0])
        )

    def test_info_surfaced_in_stats(self, trained_cats):
        shadow = ShadowScorer(
            trained_cats, trained_cats, info={"version": 7}
        )
        assert shadow.stats()["model"] == {"version": 7}


class TestServiceIntegration:
    def test_shadow_never_changes_champion_outputs(
        self, trained_cats, challenger_cats, feed, feed_item_ids
    ):
        plain = DetectionService(
            trained_cats, rescore_growth=1.0, max_delay_ms=2
        ).start()
        try:
            plain.ingest(feed)
            expected_scores = plain.score(feed_item_ids)
            expected_alerts = plain.alerts()
        finally:
            plain.stop()

        shadow = ShadowScorer(
            trained_cats, challenger_cats, rescore_growth=1.0
        )
        shadowed = DetectionService(
            trained_cats, rescore_growth=1.0, max_delay_ms=2, shadow=shadow
        ).start()
        try:
            shadowed.ingest(feed)
            assert shadowed.score(feed_item_ids) == expected_scores
            assert shadowed.alerts() == expected_alerts
        finally:
            shadowed.stop()
        # Shadow counters are read after the drain: compare() runs on
        # the scheduler thread after the champion's future resolves, so
        # it must never be on the champion's response path.
        stats = shadowed.stats()
        assert stats["shadow"]["scored"] == len(feed_item_ids)
        assert stats["shadow_errors"] == 0

    def test_crashing_shadow_counted_not_fatal(
        self, trained_cats, feed, feed_item_ids
    ):
        class Exploding:
            def observe_feed(self, comments, sales=()):
                raise RuntimeError("boom")

            def compare(self, results):
                raise RuntimeError("boom")

            def stats(self):
                return {}

            def close(self):
                pass

        service = DetectionService(
            trained_cats, rescore_growth=1.0, max_delay_ms=2,
            shadow=Exploding(),
        ).start()
        try:
            service.ingest(feed[:40])
            item_ids = sorted({r.item_id for r in feed[:40]})
            assert service.score(item_ids)
            assert service.stats()["shadow_errors"] >= 1
        finally:
            service.stop()
