"""Tests for repro.mlops.registry."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core.persistence import save_cats
from repro.mlops.drift import ReferenceHistogram
from repro.mlops.registry import ModelRegistry, RegistryError, is_registry


@pytest.fixture(scope="module")
def registry(tmp_path_factory, trained_cats, d0_small):
    """A registry with two versions; v1 promoted."""
    root = tmp_path_factory.mktemp("registry")
    reg = ModelRegistry(root)
    features = trained_cats.extract_features(d0_small.items[:120])
    reg.register(
        trained_cats,
        metrics={"f1": 0.91},
        note="initial",
        features=features,
    )
    reg.register(trained_cats, parent=1, note="retrained")
    reg.promote(1)
    return reg


class TestRegistration:
    def test_versions_numbered_monotonically(self, registry):
        assert [v.version for v in registry.versions()] == [1, 2]

    def test_version_dirs_on_disk(self, registry):
        assert (registry.root / "model-0001" / "artifact").is_dir()
        assert (registry.root / "model-0002" / "version.json").exists()

    def test_no_staging_leftovers(self, registry):
        assert not list(registry.root.glob("*.tmp"))

    def test_identity_copied_from_archive(self, registry):
        entry = registry.get(1)
        assert entry.content_hash and len(entry.content_hash) == 64
        assert entry.analyzer_hash and len(entry.analyzer_hash) == 64
        # Same system registered twice -> identical archive bytes.
        assert entry.content_hash == registry.get(2).content_hash

    def test_metadata_recorded(self, registry):
        entry = registry.get(2)
        assert entry.parent == 1
        assert entry.note == "retrained"
        assert registry.get(1).metrics == {"f1": 0.91}

    def test_drift_reference_travels_with_artifact(self, registry):
        assert ReferenceHistogram.exists(registry.get(1).artifact_dir)
        assert not ReferenceHistogram.exists(registry.get(2).artifact_dir)

    def test_register_artifact_copies_archive(
        self, registry, trained_cats, tmp_path
    ):
        model_dir = tmp_path / "exported"
        save_cats(trained_cats, model_dir)
        entry = ModelRegistry(registry.root).register_artifact(
            model_dir, note="imported"
        )
        assert entry.version == 3
        assert entry.content_hash == registry.get(1).content_hash

    def test_register_artifact_rejects_non_archive(self, registry, tmp_path):
        from repro.core.persistence import PersistenceError

        with pytest.raises(PersistenceError):
            registry.register_artifact(tmp_path)


class TestChampion:
    def test_champion_pointer(self, registry):
        assert registry.champion_version() == 1
        assert registry.latest_champion().version == 1

    def test_status_derived(self, registry):
        assert registry.get(1).status == "champion"
        assert registry.get(2).status == "challenger"

    def test_promote_unknown_version_raises(self, registry):
        with pytest.raises(RegistryError):
            registry.promote(99)

    def test_promote_swaps_pointer(self, tmp_path, trained_cats):
        reg = ModelRegistry(tmp_path / "reg")
        reg.register(trained_cats)
        reg.register(trained_cats)
        reg.promote(1)
        reg.promote(2)
        assert reg.champion_version() == 2
        assert reg.get(1).status == "challenger"

    def test_empty_registry_has_no_champion(self, tmp_path):
        reg = ModelRegistry(tmp_path / "empty")
        assert reg.champion_version() is None
        assert reg.latest_champion() is None
        with pytest.raises(RegistryError):
            reg.load_champion()

    def test_corrupt_pointer_raises(self, tmp_path, trained_cats):
        reg = ModelRegistry(tmp_path / "reg")
        reg.register(trained_cats)
        (reg.root / "champion.json").write_text("not json")
        with pytest.raises(RegistryError):
            reg.champion_version()


class TestLoading:
    def test_load_version_scores_identically(
        self, registry, trained_cats, d0_small
    ):
        loaded = registry.load_version(1)
        X = trained_cats.extract_features(d0_small.items[:40])
        np.testing.assert_array_equal(
            loaded.detector.predict_proba(X),
            trained_cats.detector.predict_proba(X),
        )

    def test_load_version_stamps_archive_info(self, registry):
        loaded = registry.load_version(2)
        assert loaded.archive_info["registry_version"] == 2
        assert loaded.archive_info["content_hash"]

    def test_load_champion_returns_entry(self, registry):
        cats, entry = registry.load_champion()
        assert entry.version == 1
        assert cats.archive_info["registry_version"] == 1

    def test_get_unknown_version_raises(self, registry):
        with pytest.raises(RegistryError):
            registry.get(42)

    def test_model_info_shape(self, registry):
        info = registry.model_info(1)
        assert info["version"] == 1
        assert info["content_hash"] == registry.get(1).content_hash
        assert "model-0001" in info["source"]


class TestIsRegistry:
    def test_registry_root_detected(self, registry):
        assert is_registry(registry.root)

    def test_plain_archive_is_not(self, trained_cats, tmp_path):
        save_cats(trained_cats, tmp_path / "model")
        assert not is_registry(tmp_path / "model")

    def test_missing_dir_is_not(self, tmp_path):
        assert not is_registry(tmp_path / "nope")

    def test_empty_dir_is_not(self, tmp_path):
        assert not is_registry(tmp_path)


class TestTamperDetection:
    def test_tampered_artifact_fails_load(self, tmp_path, trained_cats):
        reg = ModelRegistry(tmp_path / "reg")
        entry = reg.register(trained_cats)
        detector = entry.artifact_dir / "detector.json"
        data = json.loads(detector.read_text())
        data["threshold"] = 0.0
        detector.write_text(json.dumps(data))
        with pytest.raises(RegistryError):
            reg.load_version(entry.version)
