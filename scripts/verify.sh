#!/usr/bin/env sh
# One-command builder verification: the tier-1 test suite plus the
# comment-pipeline, streaming, serving, training and inference smoke
# benches (which assert the bit-identity and incremental-extraction
# invariants, not just timings).  Also available as `make verify`.
set -eu

cd "$(dirname "$0")/.."
PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"
export PYTHONPATH

echo "==> comment pipeline smoke bench (--quick)"
python benchmarks/bench_comment_pipeline.py --quick

echo "==> streaming throughput smoke bench (--quick)"
python benchmarks/bench_streaming_throughput.py --quick

echo "==> serving throughput smoke bench (--quick)"
python benchmarks/bench_serving_throughput.py --quick

echo "==> cluster serving smoke bench (--quick)"
python benchmarks/bench_cluster.py --quick

echo "==> training stack smoke bench (--quick)"
python benchmarks/bench_training.py --quick

echo "==> inference engine smoke bench (--quick)"
python benchmarks/bench_inference.py --quick

echo "==> shadow-scoring overhead smoke bench (--quick)"
python benchmarks/bench_shadow.py --quick

echo "==> parallel analysis smoke bench (--quick)"
python benchmarks/bench_analyze.py --quick

echo "==> end-to-end D1 smoke bench (--quick)"
python benchmarks/bench_e2e.py --quick

echo "==> tier-1 test suite"
python -m pytest -x -q

echo "==> verify OK"
