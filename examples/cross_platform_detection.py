"""Cross-platform application (the paper's Section IV).

Trains CATS on the Taobao-like platform's labeled D0, then:

1. crawls the *public website* of a second, never-seen platform
   ("E-platform") -- shop directory -> item listings -> comment pages,
   with retries over simulated transient failures;
2. cleans the crawl (duplicate removal, dangling references);
3. runs detection using only the crawled public data;
4. audits a sample of the reported items against expert judgment
   (ground truth stands in for the paper's anti-fraud experts).

Run:  python examples/cross_platform_detection.py
"""

from repro import CATS, build_analyzer, build_d0, build_eplatform
from repro.core.pipeline import audit_reported_items, run_crawl


def main() -> None:
    print("1. training CATS on the Taobao-like platform...")
    analyzer = build_analyzer(n_corpus_comments=8000)
    cats = CATS(analyzer)
    d0 = build_d0(scale=0.06)
    cats.fit(d0.items, d0.labels)
    print(f"   trained on D0: {d0.summary()}")

    print("2. crawling E-platform's public website...")
    eplatform = build_eplatform(scale=0.0008)
    store, crawler = run_crawl(
        eplatform, failure_rate=0.03, duplicate_rate=0.02, seed=7
    )
    stats = crawler.stats
    print(
        f"   {stats.requests} requests, {stats.retries} retries, "
        f"{stats.simulated_backoff_seconds:.1f}s simulated backoff"
    )
    print(f"   collected: {store.summary()}")

    print("3. detecting fraud items from public data only...")
    crawled = store.crawled_items()
    report = cats.detect(crawled)
    print(
        f"   reported {report.n_reported} fraud items out of "
        f"{len(crawled)} ({report.filter_report['passed']} reached the "
        "classifier)"
    )

    print("4. expert audit of the reported items...")
    if report.n_reported == 0:
        print("   nothing reported at this scale; re-run with more data")
        return
    audit = audit_reported_items(
        eplatform, crawled, report, sample_size=1000, seed=1
    )
    print(
        f"   audited {int(audit['n_audited'])} items, confirmed "
        f"{int(audit['n_confirmed'])} -> precision "
        f"{audit['audit_precision']:.2f} (paper: 960/1000 = 0.96)"
    )


if __name__ == "__main__":
    main()
