"""Classifier selection for the detector (the paper's Table III study).

Compares the six candidate classifiers -- XGBoost-style GBDT, linear
SVM, AdaBoost, a neural network, a decision tree and Gaussian naive
Bayes -- under five-fold cross validation on a balanced labeled sample,
then shows how to ship CATS with a non-default classifier.

Run:  python examples/classifier_comparison.py
"""

from repro import CATS, CATSConfig, build_analyzer, build_d0
from repro.core.config import DetectorConfig
from repro.core.detector import CLASSIFIER_FACTORIES, SCALED_CLASSIFIERS
from repro.datasets.splits import balanced_sample, features_and_labels
from repro.ml import StandardScaler, cross_validate


def main() -> None:
    print("preparing features...")
    analyzer = build_analyzer(n_corpus_comments=8000)
    cats = CATS(analyzer)
    d0 = build_d0(scale=0.05)
    sample = balanced_sample(d0, n_per_class=min(500, d0.n_fraud), seed=0)
    X, y = features_and_labels(sample, cats.feature_extractor)
    X_scaled = StandardScaler().fit_transform(X)

    print(f"\n{'classifier':<16} {'precision':>9} {'recall':>7} {'f1':>6}")
    best_name, best_f1 = "", -1.0
    for name, factory in CLASSIFIER_FACTORIES.items():
        data = X_scaled if name in SCALED_CLASSIFIERS else X
        scores = cross_validate(
            lambda f=factory: f(0), data, y, n_splits=5, seed=0
        )
        print(
            f"{name:<16} {scores['precision']:>9.3f} "
            f"{scores['recall']:>7.3f} {scores['f1']:>6.3f}"
        )
        if scores["f1"] > best_f1:
            best_name, best_f1 = name, scores["f1"]

    print(f"\nbest by F1: {best_name} (the paper selects Xgboost)")

    print(f"\nshipping CATS with classifier={best_name!r}...")
    config = CATSConfig(detector=DetectorConfig(classifier=best_name))
    chosen = CATS(analyzer, config=config)
    chosen.fit(d0.items, d0.labels)
    importances = chosen.feature_importances()
    if importances is not None:
        from repro.core.features import FEATURE_NAMES

        ranked = sorted(
            zip(FEATURE_NAMES, importances), key=lambda p: -p[1]
        )
        print("top-5 features by split count (cf. paper Fig. 7):")
        for feature, score in ranked[:5]:
            print(f"  {feature:<32} {score:.0f}")


if __name__ == "__main__":
    main()
