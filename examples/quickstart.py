"""Quickstart: train CATS and detect fraud items.

Builds the semantic analyzer (segmenter + word2vec + sentiment +
lexicons), pre-trains the detector on a small D0-style labeled set, and
runs detection over a D1-style imbalanced evaluation set -- the paper's
Sections II-III at miniature scale.

Run:  python examples/quickstart.py
"""

from repro import CATS, build_analyzer, build_d0, build_d1
from repro.ml.metrics import classification_report


def main() -> None:
    print("1. training the semantic analyzer (word2vec + sentiment)...")
    analyzer = build_analyzer(n_corpus_comments=8000)
    n_pos, n_neg = analyzer.lexicon.sizes
    print(f"   lexicons: |P|={n_pos} |N|={n_neg}")
    print(f"   sample positive words: "
          f"{sorted(analyzer.lexicon.positive)[:6]}")

    print("2. pre-training the detector on D0...")
    d0 = build_d0(scale=0.03)
    print(f"   D0: {d0.summary()}")
    cats = CATS(analyzer)
    cats.fit(d0.items, d0.labels)

    print("3. detecting on a D1-style imbalanced dataset...")
    d1 = build_d1(scale=0.003)
    print(f"   D1: {d1.summary()}")
    report = cats.detect(d1.items)
    print(f"   reported {report.n_reported} fraud items "
          f"({int(report.passed_filter.sum())} passed the rule filter)")

    print("4. scoring against ground truth:")
    print(classification_report(d1.labels, report.is_fraud.astype(int)))

    print("\nmost suspicious items:")
    for idx in report.reported_indices()[:5]:
        item = d1.items[idx]
        print(
            f"   item {item.item_id}  P(fraud)="
            f"{report.fraud_probability[idx]:.3f}  "
            f"({len(item.comments)} comments, sales {item.sales_volume})"
        )


if __name__ == "__main__":
    main()
