"""Deployment workflow + underground-ecosystem mining.

Covers the reproduction's extensions of the paper's Section VI/VII:

1. train CATS and **save** the complete system to disk (the paper's
   deployment story is a pre-trained detector);
2. **calibrate the reporting threshold** for the deployment regime --
   the detector trains on balanced data but deploys at ~1% fraud
   prevalence, where the naive 0.5 cut destroys precision;
3. reload the model in a "fresh process" and detect;
4. **mine promoter cohorts** from the reported items' co-purchase
   graph and attribute items to campaigns (Section VII future work).

Run:  python examples/deployment_and_mining.py
"""

import tempfile

import numpy as np

from repro import CATS, build_analyzer, build_d0, build_eplatform
from repro.analysis.adapters import crawled_view
from repro.analysis.cohorts import (
    attribute_items,
    cohort_summary,
    discover_cohorts,
)
from repro.core.persistence import load_cats, save_cats
from repro.ml.tuning import calibrate_threshold


def main() -> None:
    print("1. training CATS...")
    analyzer = build_analyzer(n_corpus_comments=8000)
    cats = CATS(analyzer)
    d0 = build_d0(scale=0.06)
    cats.fit(d0.items, d0.labels)

    print("2. calibrating the reporting threshold on held-out data...")
    holdout = build_d0(scale=0.01, seed=777)
    proba = cats.detector.predict_proba(
        cats.extract_features(holdout.items)
    )
    calibration = calibrate_threshold(
        proba,
        holdout.labels,
        target_prevalence=0.0126,  # D1's fraud prevalence
        min_precision=0.9,
    )
    print(
        f"   threshold {calibration.threshold:.2f} -> expected "
        f"precision {calibration.expected_precision:.2f}, recall "
        f"{calibration.expected_recall:.2f} at 1.26% prevalence"
    )

    with tempfile.TemporaryDirectory() as model_dir:
        print(f"3. saving the trained system to {model_dir} ...")
        save_cats(cats, model_dir)
        reloaded = load_cats(model_dir)
        print("   reloaded; running cross-platform detection...")

        eplatform = build_eplatform(scale=0.0008)
        crawled = crawled_view(eplatform)
        report = reloaded.detect(crawled)
        print(f"   reported {report.n_reported} of {len(crawled)} items")

    print("4. mining promoter cohorts from reported items...")
    flagged_groups = [
        item.comments
        for item, flag in zip(crawled, report.is_fraud)
        if flag
    ]
    cohorts = discover_cohorts(flagged_groups, min_cohort_size=3)
    population_mean = float(
        np.mean([u.exp_value for u in eplatform.users.values()])
    )
    summary = cohort_summary(cohorts, population_mean)
    print(
        f"   {int(summary['n_cohorts'])} cohorts, "
        f"{int(summary['total_members'])} accounts, covering "
        f"{int(summary['total_items'])} items; "
        f"{summary['low_exp_fraction']:.0%} of cohorts sit below the "
        "population reputation mean"
    )
    attribution = attribute_items(flagged_groups, cohorts)
    print(f"   {len(attribution)} items attributed to a hiring campaign")
    for cohort in cohorts[:3]:
        print(
            f"   cohort #{cohort.cohort_id}: {cohort.size} accounts, "
            f"{len(cohort.item_ids)} items, mean expvalue "
            f"{cohort.mean_exp_value:,.0f}"
        )


if __name__ == "__main__":
    main()
