"""Measurement study of reported frauds (the paper's Section V).

After detection, the paper validates the reports statistically from
three aspects.  This example reproduces all three on a small simulated
E-platform:

* **item aspect** -- top frequent words (word clouds) and comment
  sentiment of reported fraud vs normal items;
* **user aspect** -- userExpValue of buyers, repeat purchases,
  co-purchase pair structure of "risky users";
* **order aspect** -- which client the orders came through.

Run:  python examples/measurement_study.py
"""

import numpy as np

from repro import CATS, build_analyzer, build_d0, build_eplatform
from repro.analysis.adapters import crawled_view
from repro.analysis.order_study import client_distribution, dominant_client
from repro.analysis.sentiment_study import (
    comment_sentiments,
    positive_comment_fraction,
)
from repro.analysis.user_study import (
    buyer_expvalue_distribution,
    co_purchase_pairs,
    expvalue_threshold_fractions,
    repeat_purchase_stats,
)
from repro.analysis.wordclouds import positive_share, top_words


def main() -> None:
    print("training CATS and detecting on E-platform...")
    analyzer = build_analyzer(n_corpus_comments=8000)
    cats = CATS(analyzer)
    d0 = build_d0(scale=0.06)
    cats.fit(d0.items, d0.labels)

    eplatform = build_eplatform(scale=0.001)
    crawled = crawled_view(eplatform)
    report = cats.detect(crawled)
    flagged = [c for c, f in zip(crawled, report.is_fraud) if f]
    unflagged = [c for c, f in zip(crawled, report.is_fraud) if not f]
    print(f"reported {len(flagged)} of {len(crawled)} items\n")

    # -- item aspect -------------------------------------------------------
    print("== item aspect ==")
    fraud_cloud = top_words(
        (i.comment_texts for i in flagged), analyzer.segment, k=50
    )
    normal_cloud = top_words(
        (i.comment_texts for i in unflagged[:1500]), analyzer.segment, k=50
    )
    lang_positive = analyzer.lexicon.positive
    print(
        "top-10 fraud words:  "
        + ", ".join(w for w, __ in fraud_cloud[:10])
    )
    print(
        "top-10 normal words: "
        + ", ".join(w for w, __ in normal_cloud[:10])
    )
    print(
        f"positive share of top-50: fraud="
        f"{positive_share(fraud_cloud, lang_positive):.2f} "
        f"normal={positive_share(normal_cloud, lang_positive):.2f} "
        "(paper: fraud ~28%, positive-dominated)"
    )
    fraud_sent = comment_sentiments(
        (i.comment_texts for i in flagged), analyzer.comment_sentiment
    )
    print(
        f"fraud comments positive fraction: "
        f"{positive_comment_fraction(fraud_sent):.3f} (paper: >0.998)\n"
    )

    # -- user aspect --------------------------------------------------------
    print("== user aspect ==")
    fraud_comments = [c for item in flagged for c in item.comments]
    normal_comments = [
        c for item in unflagged[:1500] for c in item.comments
    ]
    dist = buyer_expvalue_distribution(fraud_comments, normal_comments)
    fracs = expvalue_threshold_fractions(dist["fraud"])
    print(
        f"fraud buyers: {fracs['below_2000']:.0%} below expvalue 2000 "
        f"(paper 45%), {fracs['below_1000']:.0%} below 1000 (paper 39%), "
        f"{fracs['at_floor']:.0%} at floor 100 (paper 15%)"
    )
    repeats = repeat_purchase_stats(fraud_comments)
    print(
        f"risky users: {int(repeats['n_risky_users'])}, "
        f"{repeats['repeat_fraction']:.0%} repeat buyers (paper 20%), "
        f"max orders by one user: "
        f"{int(repeats['max_orders_by_one_user'])}"
    )
    pairs = co_purchase_pairs([i.comments for i in flagged])
    print(
        f"co-purchase pairs (2+ common fraud items): "
        f"{int(pairs['qualifying_pairs'])} pairs over "
        f"{int(pairs['distinct_users'])} users "
        "(paper: 83,745 pairs over 1,056 users)\n"
    )

    # -- order aspect --------------------------------------------------------
    print("== order aspect ==")
    fraud_clients = client_distribution(fraud_comments)
    normal_clients = client_distribution(normal_comments)
    print(f"fraud order sources:  {_fmt(fraud_clients)}")
    print(f"normal order sources: {_fmt(normal_clients)}")
    print(
        f"dominant: fraud={dominant_client(fraud_clients)} "
        f"(paper: web), normal={dominant_client(normal_clients)} "
        "(paper: android)"
    )


def _fmt(dist: dict) -> str:
    return ", ".join(f"{k}={v:.0%}" for k, v in dist.items())


if __name__ == "__main__":
    main()
