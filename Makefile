# Builder entry points.  `make verify` is the one-command check used
# before shipping: tier-1 tests + the comment-pipeline, streaming,
# serving, training and inference smoke benches.  `make serve` trains
# a toy model on first use and serves it.

PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))
export PYTHONPATH

TOY_MODEL := examples/toy_model

.PHONY: verify test bench-smoke bench-smoke-serving \
	bench-smoke-pipeline bench-smoke-training bench-smoke-inference \
	bench-smoke-cluster bench-smoke-shadow bench-smoke-analyze \
	bench-smoke-e2e bench \
	serve serve-cluster

verify:
	sh scripts/verify.sh

test:
	python -m pytest -x -q

bench-smoke:
	python benchmarks/bench_streaming_throughput.py --quick

bench-smoke-serving:
	python benchmarks/bench_serving_throughput.py --quick

bench-smoke-pipeline:
	python benchmarks/bench_comment_pipeline.py --quick

bench-smoke-training:
	python benchmarks/bench_training.py --quick

bench-smoke-inference:
	python benchmarks/bench_inference.py --quick

bench-smoke-cluster:
	python benchmarks/bench_cluster.py --quick

bench-smoke-shadow:
	python benchmarks/bench_shadow.py --quick

bench-smoke-analyze:
	python benchmarks/bench_analyze.py --quick

bench-smoke-e2e:
	python benchmarks/bench_e2e.py --quick

bench:
	python -m pytest benchmarks/ --benchmark-only

$(TOY_MODEL)/manifest.json:
	python -m repro.cli train $(TOY_MODEL) --scale 0.01

serve: $(TOY_MODEL)/manifest.json
	python -m repro.cli serve $(TOY_MODEL) \
		--checkpoint-dir $(TOY_MODEL)/checkpoints --checkpoint-every 500

serve-cluster: $(TOY_MODEL)/manifest.json
	python -m repro.cli serve $(TOY_MODEL) --shards 4 \
		--checkpoint-dir $(TOY_MODEL)/cluster-checkpoints \
		--checkpoint-every 500
