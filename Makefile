# Builder entry points.  `make verify` is the one-command check used
# before shipping: tier-1 tests + the streaming smoke bench.

PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))
export PYTHONPATH

.PHONY: verify test bench-smoke bench

verify:
	sh scripts/verify.sh

test:
	python -m pytest -x -q

bench-smoke:
	python benchmarks/bench_streaming_throughput.py --quick

bench:
	python -m pytest benchmarks/ --benchmark-only
